// Page-level reranking tests: the cross-list coverage math, the greedy
// pass (joint vs independent), the page session generator, the page DCM,
// and the wire path — a real net::Server fanning one page frame into the
// router and reassembling the page reply.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "click/page_dcm.h"
#include "datagen/pages.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "page/page.h"
#include "rerank/reranker.h"
#include "serve/prometheus.h"
#include "serve/router.h"

namespace rapid {
namespace {

using namespace std::chrono_literals;

data::Dataset SmallDataset(uint64_t seed = 101) {
  data::SimConfig cfg;
  cfg.kind = data::DatasetKind::kTaobao;
  cfg.num_users = 20;
  cfg.num_items = 120;
  return data::GenerateDataset(cfg, seed);
}

/// Deterministic stand-in model: rotates the list left by `shift`.
class RotateReranker : public rerank::Reranker {
 public:
  explicit RotateReranker(int shift) : shift_(shift) {}

  std::string name() const override {
    return "rotate-" + std::to_string(shift_);
  }

  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    std::vector<int> out = list.items;
    if (!out.empty()) {
      std::rotate(out.begin(),
                  out.begin() + (shift_ % static_cast<int>(out.size())),
                  out.end());
    }
    return out;
  }

 private:
  const int shift_;
};

bool IsPermutationOf(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

// ---------------------------------------------------------------------------
// Coverage math

TEST(PageCoverageTest, MarginalGainIsTheCoverageDelta) {
  // The externalized-residual gain must equal the Eq. 4 coverage delta of
  // appending the item to the already-shown prefix. Coverage is over the
  // set union, so the identity holds for *fresh* items — a repeat would
  // have delta 0 against a residual that already absorbed it.
  const data::Dataset data = SmallDataset();
  std::mt19937_64 rng(7);
  std::vector<float> residual(data.num_topics, 1.0f);
  std::vector<int> shown;
  for (int step = 0; step < 30; ++step) {
    const int item = static_cast<int>(rng() % data.items.size());
    if (std::find(shown.begin(), shown.end(), item) != shown.end()) continue;
    const float before = page::PageCoverage(data, {shown});
    const float gain = rerank::MarginalCoverageGain(data.item(item), residual);
    shown.push_back(item);
    const float after = page::PageCoverage(data, {shown});
    EXPECT_NEAR(after - before, gain, 1e-4f) << "step " << step;
    rerank::AbsorbCoverage(data.item(item), &residual);
  }
}

TEST(PageCoverageTest, RedundancyIsNonNegativeAndZeroForDisjointTopics) {
  const data::Dataset data = SmallDataset();
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<int>> lists(2 + trial % 3);
    for (std::vector<int>& list : lists) {
      list.resize(5);
      for (int& item : list) item = static_cast<int>(rng() % data.items.size());
    }
    EXPECT_GE(page::CrossListRedundancy(data, lists), 0.0f);
  }
  // A page with a single list can never duplicate topic mass across lists.
  EXPECT_FLOAT_EQ(page::CrossListRedundancy(data, {{1, 2, 3}}), 0.0f);
}

TEST(PageCoverageTest, DuplicatedListsAreMaximallyRedundant) {
  const data::Dataset data = SmallDataset();
  const std::vector<int> list = {3, 14, 15, 92, 65};
  // Showing the same list twice: the union covers exactly what one copy
  // covers beyond the first absorption, so redundancy is near one list's
  // own coverage mass (not exactly — probabilistic coverage keeps
  // absorbing — but strictly positive and large).
  const float redundancy = page::CrossListRedundancy(data, {list, list});
  EXPECT_GT(redundancy, 0.1f * page::PageCoverage(data, {list}));
}

// ---------------------------------------------------------------------------
// The greedy pass

TEST(PageRerankTest, OutputsArePermutationsOfInputs) {
  const data::Dataset data = SmallDataset();
  const page::PageReranker reranker(data);
  std::mt19937_64 rng(3);
  std::vector<std::vector<int>> lists(3);
  std::vector<std::vector<float>> relevance(3);
  for (size_t l = 0; l < lists.size(); ++l) {
    lists[l].resize(8 + l);
    for (int& item : lists[l]) item = static_cast<int>(rng() % data.items.size());
    relevance[l] = page::PageReranker::RankRelevance(lists[l].size());
  }
  const page::PageResult result = reranker.Rerank(lists, relevance, 2.0f);
  ASSERT_EQ(result.lists.size(), lists.size());
  for (size_t l = 0; l < lists.size(); ++l) {
    EXPECT_TRUE(IsPermutationOf(result.lists[l], lists[l])) << "list " << l;
  }
  EXPECT_GE(result.page_coverage, 0.0f);
  EXPECT_LE(result.page_coverage, 1.0f);
  EXPECT_GE(result.cross_list_redundancy, 0.0f);
}

TEST(PageRerankTest, ZeroBudgetPreservesRelevanceOrder) {
  const data::Dataset data = SmallDataset();
  const page::PageReranker reranker(data);
  std::vector<std::vector<int>> lists = {{10, 20, 30, 40, 50},
                                         {60, 70, 80, 90}};
  std::vector<std::vector<float>> relevance;
  for (const std::vector<int>& list : lists) {
    relevance.push_back(page::PageReranker::RankRelevance(list.size()));
  }
  const page::PageResult result = reranker.Rerank(lists, relevance, 0.0f);
  EXPECT_EQ(result.lists, lists);  // Pure relevance = input order here.
  EXPECT_FLOAT_EQ(result.diversity_spent, 0.0f);
}

TEST(PageRerankTest, NegativeOrNanBudgetIsTreatedAsZero) {
  const data::Dataset data = SmallDataset();
  const page::PageReranker reranker(data);
  const std::vector<std::vector<int>> lists = {{10, 20, 30}};
  const std::vector<std::vector<float>> relevance = {
      page::PageReranker::RankRelevance(3)};
  for (const float budget : {-5.0f, std::nanf("")}) {
    const page::PageResult result = reranker.Rerank(lists, relevance, budget);
    EXPECT_EQ(result.lists, lists);
    EXPECT_FLOAT_EQ(result.diversity_spent, 0.0f);
  }
}

TEST(PageRerankTest, SpentNeverExceedsBudgetByMoreThanOneGain) {
  const data::Dataset data = SmallDataset();
  const page::PageReranker reranker(data);
  std::mt19937_64 rng(5);
  for (const float budget : {0.1f, 0.5f, 1.5f}) {
    std::vector<std::vector<int>> lists(3);
    std::vector<std::vector<float>> relevance(3);
    for (size_t l = 0; l < lists.size(); ++l) {
      lists[l].resize(10);
      for (int& item : lists[l]) {
        item = static_cast<int>(rng() % data.items.size());
      }
      relevance[l] = page::PageReranker::RankRelevance(lists[l].size());
    }
    const page::PageResult result = reranker.Rerank(lists, relevance, budget);
    // The gate checks before each pick, so the final pick may overshoot by
    // at most its own gain, and a single item's gain is at most 1.
    EXPECT_LE(result.diversity_spent, budget + 1.0f);
  }
}

TEST(PageRerankTest, JointBeatsIndependentOnRedundantPages) {
  const data::Dataset data = SmallDataset();
  data::PageGenConfig gen;
  gen.num_pages = 30;
  gen.shared_frac = 0.6f;  // Heavy cross-list overlap to exploit.
  const std::vector<data::PageSession> sessions =
      data::GeneratePageSessions(data, gen, 20260808);

  // Coverage over *whole* lists is permutation-invariant, so the pass is
  // judged on what the user scans first: the treated top-5 prefixes.
  page::PageRerankConfig joint_cfg;
  joint_cfg.joint = true;
  joint_cfg.top_k = 5;
  page::PageRerankConfig indep_cfg;
  indep_cfg.joint = false;
  indep_cfg.top_k = 5;
  const page::PageReranker joint(data, joint_cfg);
  const page::PageReranker indep(data, indep_cfg);
  const click::PageDcm dcm(&data, click::PageDcmConfig{});

  double joint_util = 0.0, indep_util = 0.0;
  double joint_red = 0.0, indep_red = 0.0;
  double joint_spent = 0.0, indep_spent = 0.0;
  for (const data::PageSession& session : sessions) {
    std::vector<std::vector<int>> lists;
    std::vector<std::vector<float>> relevance;
    for (const data::ImpressionList& list : session.lists) {
      lists.push_back(list.items);
      relevance.push_back(page::PageReranker::RankRelevance(list.items.size()));
    }
    const page::PageResult jr =
        joint.Rerank(lists, relevance, session.diversity_budget);
    const page::PageResult ir =
        indep.Rerank(lists, relevance, session.diversity_budget);
    joint_util += dcm.ExpectedPageUtility(session.user_id, jr.lists, 5);
    indep_util += dcm.ExpectedPageUtility(session.user_id, ir.lists, 5);
    joint_red += jr.cross_list_redundancy;
    indep_red += ir.cross_list_redundancy;
    joint_spent += jr.diversity_spent;
    indep_spent += ir.diversity_spent;
  }
  // The page DCM discounts the attraction of already-covered topics, so
  // duplicated impressions earn fewer clicks: the shared coverage state
  // lets the joint pass spend its budget on topics no sibling list already
  // covered, beating the split-budget independent baseline on
  // diversity-aware page utility.
  EXPECT_GT(joint_util, indep_util);
  // ... while leaving less duplicated topic mass in the treated prefixes,
  EXPECT_LT(joint_red, indep_red);
  // ... and spending far less marginal-coverage mass to get there (the
  // blind per-list passes re-buy topics their siblings already covered).
  EXPECT_LT(joint_spent, indep_spent);
}

// ---------------------------------------------------------------------------
// Page sessions + page DCM

TEST(PageSessionTest, GeneratorIsDeterministicAndWellFormed) {
  const data::Dataset data = SmallDataset();
  data::PageGenConfig gen;
  gen.num_pages = 10;
  const auto a = data::GeneratePageSessions(data, gen, 42);
  const auto b = data::GeneratePageSessions(data, gen, 42);
  const auto c = data::GeneratePageSessions(data, gen, 43);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 10u);
  bool any_differs = false;
  for (size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].lists.size(), static_cast<size_t>(gen.lists_per_page));
    EXPECT_EQ(a[p].user_id, b[p].user_id);
    EXPECT_GT(a[p].diversity_budget, 0.0f);
    for (size_t l = 0; l < a[p].lists.size(); ++l) {
      const data::ImpressionList& list = a[p].lists[l];
      ASSERT_EQ(list.items.size(), static_cast<size_t>(gen.items_per_list));
      ASSERT_EQ(list.scores.size(), list.items.size());
      EXPECT_EQ(list.items, b[p].lists[l].items);
      if (list.items != c[p].lists[l].items) any_differs = true;
      // Distinct within a list; every id in the catalog.
      std::vector<int> sorted = list.items;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
      EXPECT_GE(sorted.front(), 0);
      EXPECT_LT(sorted.back(), static_cast<int>(data.items.size()));
      // Initial-ranked: scores descending.
      EXPECT_TRUE(std::is_sorted(list.scores.rbegin(), list.scores.rend()));
    }
  }
  EXPECT_TRUE(any_differs);  // A different seed produces different pages.
}

TEST(PageSessionTest, SharedPoolCreatesCrossListOverlap) {
  const data::Dataset data = SmallDataset();
  data::PageGenConfig overlapping;
  overlapping.num_pages = 20;
  overlapping.shared_frac = 0.8f;
  data::PageGenConfig disjoint = overlapping;
  disjoint.shared_frac = 0.0f;

  const auto CountOverlaps = [](const std::vector<data::PageSession>& pages) {
    int overlaps = 0;
    for (const data::PageSession& page : pages) {
      for (size_t a = 0; a < page.lists.size(); ++a) {
        for (size_t b = a + 1; b < page.lists.size(); ++b) {
          for (const int item : page.lists[a].items) {
            const auto& other = page.lists[b].items;
            overlaps += std::count(other.begin(), other.end(), item);
          }
        }
      }
    }
    return overlaps;
  };

  EXPECT_GT(
      CountOverlaps(data::GeneratePageSessions(data, overlapping, 9)),
      CountOverlaps(data::GeneratePageSessions(data, disjoint, 9)));
}

TEST(PageDcmTest, AttractionStaysInUnitIntervalAndShrinksWithCoverage) {
  const data::Dataset data = SmallDataset();
  const click::PageDcm dcm(&data, click::PageDcmConfig{});
  std::vector<float> fresh(data.num_topics, 1.0f);
  std::vector<float> exhausted(data.num_topics, 0.0f);
  for (int item = 0; item < 40; ++item) {
    const float with_fresh = dcm.Attraction(1, item, fresh);
    const float with_exhausted = dcm.Attraction(1, item, exhausted);
    EXPECT_GE(with_fresh, 0.0f);
    EXPECT_LE(with_fresh, 1.0f);
    // No uncovered mass left: only the relevance term remains.
    EXPECT_LE(with_exhausted, with_fresh + 1e-6f);
  }
}

TEST(PageDcmTest, ExpectedUtilityRewardsCrossListDiversity) {
  const data::Dataset data = SmallDataset();
  const click::PageDcm dcm(&data, click::PageDcmConfig{});
  data::PageGenConfig gen;
  gen.num_pages = 20;
  gen.shared_frac = 0.6f;
  const auto sessions = data::GeneratePageSessions(data, gen, 77);
  const page::PageReranker joint(data);

  double reranked = 0.0, raw = 0.0;
  for (const data::PageSession& session : sessions) {
    std::vector<std::vector<int>> lists;
    std::vector<std::vector<float>> relevance;
    for (const data::ImpressionList& list : session.lists) {
      lists.push_back(list.items);
      relevance.push_back(page::PageReranker::RankRelevance(list.items.size()));
    }
    const page::PageResult result =
        joint.Rerank(lists, relevance, session.diversity_budget);
    raw += dcm.ExpectedPageUtility(session.user_id, lists, 5);
    reranked += dcm.ExpectedPageUtility(session.user_id, result.lists, 5);
  }
  EXPECT_GE(reranked, 0.0);
  EXPECT_GT(reranked, raw * 0.99);  // Diversification must not hurt pages.
}

TEST(PageDcmTest, SimulatedClicksMatchPageShapeAndAreDeterministic) {
  const data::Dataset data = SmallDataset();
  const click::PageDcm dcm(&data, click::PageDcmConfig{});
  const std::vector<std::vector<int>> lists = {{1, 2, 3, 4}, {5, 6}, {7, 8, 9}};
  std::mt19937_64 rng_a(21), rng_b(21);
  const auto clicks_a = dcm.SimulateClicks(2, lists, rng_a);
  const auto clicks_b = dcm.SimulateClicks(2, lists, rng_b);
  ASSERT_EQ(clicks_a.size(), lists.size());
  for (size_t l = 0; l < lists.size(); ++l) {
    ASSERT_EQ(clicks_a[l].size(), lists[l].size());
    for (const int c : clicks_a[l]) EXPECT_TRUE(c == 0 || c == 1);
  }
  EXPECT_EQ(clicks_a, clicks_b);
}

// ---------------------------------------------------------------------------
// The wire path

TEST(PageWireTest, PageRoundTripReranksAllListsWithAttribution) {
  const data::Dataset data = SmallDataset();
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  net::WirePageRequest request;
  request.slot = "main";
  request.user_id = 3;
  request.diversity_budget = 2.0f;
  request.joint = 1;
  for (int l = 0; l < 3; ++l) {
    data::ImpressionList list;
    for (int i = 0; i < 8; ++i) {
      list.items.push_back((l * 8 + i) % static_cast<int>(data.items.size()));
      list.scores.push_back(1.0f - 0.05f * static_cast<float>(i));
    }
    request.lists.push_back(std::move(list));
  }

  net::Client::Reply reply;
  ASSERT_TRUE(client.CallPage(request, &reply, 5000));
  ASSERT_FALSE(reply.is_error);
  ASSERT_EQ(reply.type, net::FrameType::kPageResponse);
  EXPECT_FALSE(reply.page.degraded);
  EXPECT_EQ(reply.page.model_name, "rotate-1");
  EXPECT_EQ(reply.page.model_version, 1u);
  ASSERT_EQ(reply.page.lists.size(), 3u);
  for (size_t l = 0; l < 3; ++l) {
    EXPECT_TRUE(IsPermutationOf(reply.page.lists[l], request.lists[l].items))
        << "list " << l;
  }
  EXPECT_GT(reply.page.page_coverage, 0.0f);
  EXPECT_GE(reply.page.cross_list_redundancy, 0.0f);

  // Per-page metrics flow end to end: counters, table/json render, and the
  // Prometheus exposition.
  const serve::RouterStats stats = server.StatsWithNet();
  ASSERT_TRUE(stats.has_page);
  EXPECT_EQ(stats.page.pages, 1u);
  EXPECT_EQ(stats.page.page_lists, 3u);
  EXPECT_EQ(stats.page.joint_pages, 1u);
  EXPECT_EQ(stats.page.degraded_pages, 0u);
  EXPECT_EQ(stats.page.lists_per_page_hist[2], 1u);
  EXPECT_EQ(stats.page.max_lists_per_page, 3);
  EXPECT_NE(stats.ToTable().find("page"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"page\""), std::string::npos);
  const std::string prom = serve::RenderPrometheus(stats);
  EXPECT_NE(prom.find("rapid_page_pages_total 1\n"), std::string::npos);
  EXPECT_NE(prom.find("rapid_page_lists_total 3\n"), std::string::npos);

  // The router saw the page as three micro-batchable list requests.
  EXPECT_EQ(stats.total.requests, 3u);
}

TEST(PageWireTest, UnknownSlotReturnsDegradedPageWithRouterOrders) {
  const data::Dataset data = SmallDataset();
  serve::ServingRouter router(data, {});
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  net::WirePageRequest request;
  request.slot = "no-such-slot";
  request.diversity_budget = 1.0f;
  for (int l = 0; l < 2; ++l) {
    data::ImpressionList list;
    for (int i = 0; i < 5; ++i) {
      list.items.push_back(l * 5 + i);
      list.scores.push_back(1.0f);
    }
    request.lists.push_back(std::move(list));
  }

  net::Client::Reply reply;
  ASSERT_TRUE(client.CallPage(request, &reply, 5000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_TRUE(reply.page.degraded);
  ASSERT_EQ(reply.page.lists.size(), 2u);
  for (size_t l = 0; l < 2; ++l) {
    EXPECT_TRUE(IsPermutationOf(reply.page.lists[l], request.lists[l].items));
  }
  const serve::RouterStats stats = server.StatsWithNet();
  ASSERT_TRUE(stats.has_page);
  EXPECT_EQ(stats.page.degraded_pages, 1u);
  EXPECT_EQ(stats.page.joint_pages, 0u);
}

TEST(PageWireTest, MalformedPageFrameGetsErrorAndConnectionSurvives) {
  const data::Dataset data = SmallDataset();
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  // Well-framed but unparseable: an empty page payload.
  net::WirePageRequest empty;
  empty.slot = "main";
  net::Client::Reply reply;
  ASSERT_TRUE(client.CallPage(empty, &reply, 5000));
  EXPECT_TRUE(reply.is_error);

  // The connection is still usable for a valid page afterwards.
  net::WirePageRequest good;
  good.slot = "main";
  data::ImpressionList list;
  list.items = {1, 2, 3};
  list.scores = {1.0f, 0.9f, 0.8f};
  good.lists.push_back(list);
  ASSERT_TRUE(client.CallPage(good, &reply, 5000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_TRUE(IsPermutationOf(reply.page.lists.at(0), list.items));
}

TEST(PageWireTest, OutOfCatalogIdsDegradeInsteadOfCrashing) {
  const data::Dataset data = SmallDataset();
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  net::WirePageRequest request;
  request.slot = "main";
  request.diversity_budget = 1.0f;
  data::ImpressionList list;
  list.items = {1, 2, 1'000'000};  // Far outside the 120-item catalog.
  list.scores = {1.0f, 0.9f, 0.8f};
  request.lists.push_back(list);

  net::Client::Reply reply;
  ASSERT_TRUE(client.CallPage(request, &reply, 5000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_TRUE(reply.page.degraded);
  EXPECT_TRUE(IsPermutationOf(reply.page.lists.at(0), list.items));
}

TEST(PageWireTest, ConcurrentPagesSurviveSnapshotSwaps) {
  // TSan coverage: page fan-out on the dispatchers while the router's
  // published slot is hot-swapped mid-stream. No ordering is asserted —
  // only that every page is answered and nothing races.
  const data::Dataset data = SmallDataset();
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    int version = 2;
    while (!stop.load(std::memory_order_acquire)) {
      router.InstallSlot("main", std::make_shared<RotateReranker>(version++));
      std::this_thread::sleep_for(1ms);
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 20;
  std::atomic<int> answered{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      net::Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
      for (int p = 0; p < kPagesPerThread; ++p) {
        net::WirePageRequest request;
        request.slot = "main";
        request.user_id = t;
        request.diversity_budget = 1.5f;
        request.joint = static_cast<uint8_t>(p & 1);
        for (int l = 0; l < 3; ++l) {
          data::ImpressionList list;
          for (int i = 0; i < 6; ++i) {
            list.items.push_back((t * 31 + p * 7 + l * 6 + i) %
                                 static_cast<int>(data.items.size()));
            list.scores.push_back(1.0f - 0.1f * static_cast<float>(i));
          }
          request.lists.push_back(std::move(list));
        }
        net::Client::Reply reply;
        ASSERT_TRUE(client.CallPage(request, &reply, 10'000));
        ASSERT_FALSE(reply.is_error);
        ASSERT_EQ(reply.page.lists.size(), 3u);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  stop.store(true, std::memory_order_release);
  swapper.join();

  EXPECT_EQ(answered.load(), kThreads * kPagesPerThread);
  const serve::RouterStats stats = server.StatsWithNet();
  ASSERT_TRUE(stats.has_page);
  EXPECT_EQ(stats.page.pages,
            static_cast<uint64_t>(kThreads * kPagesPerThread));
  EXPECT_EQ(stats.page.page_lists,
            static_cast<uint64_t>(kThreads * kPagesPerThread * 3));
}

}  // namespace
}  // namespace rapid
