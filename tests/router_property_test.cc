// Property suite for the serving router's hot-swap/cache consistency
// (serve/router.h): under an arbitrary interleaving of `InstallSlot`
// swaps and `Submit`s with the result cache enabled, every non-degraded
// response must carry a (version, items) pair where the items are exactly
// what the stamped version computes — fresh or cached, no stale pair
// survives a swap, and versions only ever move forward. The models are
// deterministic rotations keyed by install order, so "what the stamped
// version computes" is checkable bit-for-bit from outside the router.
//
// Counterexamples shrink to a minimal op schedule and print a replayable
// seed (see tests/proptest.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/types.h"
#include "proptest.h"
#include "rerank/reranker.h"
#include "serve/router.h"

namespace rapid {
namespace {

class RotateReranker : public rerank::Reranker {
 public:
  explicit RotateReranker(int shift) : shift_(shift) {}

  std::string name() const override {
    return "rotate-" + std::to_string(shift_);
  }

  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    std::vector<int> out = list.items;
    if (!out.empty()) {
      std::rotate(out.begin(),
                  out.begin() + (shift_ % static_cast<int>(out.size())),
                  out.end());
    }
    return out;
  }

 private:
  const int shift_;
};

std::vector<int> Rotated(const std::vector<int>& items, int shift) {
  std::vector<int> out = items;
  if (!out.empty()) {
    std::rotate(out.begin(),
                out.begin() + (shift % static_cast<int>(out.size())),
                out.end());
  }
  return out;
}

data::ImpressionList ListOf(int user, int len) {
  data::ImpressionList list;
  list.user_id = user;
  for (int i = 0; i < len; ++i) {
    list.items.push_back(i);
    list.scores.push_back(1.0f - 0.05f * static_cast<float>(i));
  }
  return list;
}

/// True when `response` is consistent with the version it claims answered
/// it: the items are exactly that version's rotation of the input.
bool ResponseMatchesStampedVersion(
    const serve::RouterResponse& response, const data::ImpressionList& input,
    const std::map<uint64_t, int>& shift_of_version) {
  if (response.degraded) {
    // Degraded answers carry version 0 and never claim a model.
    return response.model_version == 0;
  }
  const auto it = shift_of_version.find(response.model_version);
  if (it == shift_of_version.end()) return false;  // Version never published.
  if (response.model_name != "rotate-" + std::to_string(it->second)) {
    return false;
  }
  return response.items == Rotated(input.items, it->second);
}

// ---------------------------------------------------------------------------
// Sequential schedules: installs and submits in one arbitrary order.

struct RouterOp {
  bool install = false;
  int shift = 0;  // Install: the new model's rotation.
  int user = 0;   // Submit: cache-key ingredients.
  int len = 2;
};

std::vector<RouterOp> RandomRouterOps(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> len(1, 40);
  std::uniform_int_distribution<int> kind(0, 4);
  std::uniform_int_distribution<int> shift(0, 9);
  std::uniform_int_distribution<int> user(0, 3);
  std::uniform_int_distribution<int> list_len(2, 10);
  std::vector<RouterOp> ops(static_cast<size_t>(len(rng)));
  for (RouterOp& op : ops) {
    op.install = kind(rng) == 0;  // ~1 install per 4 submits.
    op.shift = shift(rng);
    op.user = user(rng);
    op.len = list_len(rng);
  }
  return ops;
}

std::string DescribeRouterOps(const std::vector<RouterOp>& ops) {
  std::ostringstream os;
  os << ops.size() << " ops [";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) os << ' ';
    if (ops[i].install) {
      os << "install(shift=" << ops[i].shift << ")";
    } else {
      os << "submit(user=" << ops[i].user << ",len=" << ops[i].len << ")";
    }
  }
  os << "]";
  return os.str();
}

TEST(RouterPropertyTest, CachedAndFreshResponsesMatchTheirStampedVersion) {
  const data::Dataset data;
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260826, /*trials=*/25, RandomRouterOps,
      proptest::ShrinkOps<RouterOp>,
      [&data](const std::vector<RouterOp>& ops) {
        serve::RouterConfig config;
        config.num_threads = 2;
        config.cache.enabled = true;
        config.cache.capacity = 256;
        serve::ServingRouter router(data, config);
        std::map<uint64_t, int> shift_of_version;
        // Every pending submit: its input, its future, and whether a model
        // was already published when it was submitted (slot resolution
        // happens at dequeue, so such a request can never degrade; one
        // submitted *before* the first install may legitimately degrade as
        // unknown-slot or be served by a later version — both are valid).
        struct Pending {
          data::ImpressionList input;
          std::future<serve::RouterResponse> future;
          bool slot_published = false;
        };
        std::vector<Pending> pending;
        for (const RouterOp& op : ops) {
          if (op.install) {
            const uint64_t version = router.InstallSlot(
                "main", std::make_shared<RotateReranker>(op.shift));
            if (version == 0) return false;  // Installs must publish.
            if (shift_of_version.count(version) > 0) {
              return false;  // Versions are never reused.
            }
            shift_of_version[version] = op.shift;
            continue;
          }
          serve::RouterRequest request;
          request.slot = "main";
          request.lane = serve::Lane::kHigh;
          request.list = ListOf(op.user, op.len);
          data::ImpressionList input = request.list;
          pending.push_back({std::move(input),
                             router.Submit(std::move(request)),
                             !shift_of_version.empty()});
        }
        for (Pending& p : pending) {
          const serve::RouterResponse response = p.future.get();
          if (p.slot_published && response.degraded) return false;
          if (!ResponseMatchesStampedVersion(response, p.input,
                                             shift_of_version)) {
            return false;
          }
        }
        router.Shutdown();
        return true;
      },
      DescribeRouterOps));
}

// ---------------------------------------------------------------------------
// Concurrent swaps: submissions race installs; no torn or stale response.

struct SwapRace {
  std::vector<int> shifts;  // Versions installed by the swapper thread.
  int submissions = 50;
};

TEST(RouterPropertyTest, NoStaleVersionItemsPairSurvivesConcurrentSwaps) {
  const data::Dataset data;
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260827, /*trials=*/4,
      [](std::mt19937_64& rng) {
        SwapRace race;
        std::uniform_int_distribution<int> installs(4, 10);
        std::uniform_int_distribution<int> shift(0, 9);
        std::uniform_int_distribution<int> submissions(30, 120);
        race.shifts.resize(static_cast<size_t>(installs(rng)));
        for (int& s : race.shifts) s = shift(rng);
        race.submissions = submissions(rng);
        return race;
      },
      [](const SwapRace& race) {
        std::vector<SwapRace> out;
        for (std::vector<int>& shifts : proptest::ShrinkOps(race.shifts)) {
          if (shifts.empty()) continue;  // Keep one published version.
          out.push_back({std::move(shifts), race.submissions});
        }
        if (race.submissions > 1) {
          out.push_back({race.shifts, race.submissions / 2});
        }
        return out;
      },
      [&data](const SwapRace& race) {
        serve::RouterConfig config;
        config.num_threads = 3;
        config.cache.enabled = true;
        config.cache.capacity = 256;
        serve::ServingRouter router(data, config);

        // The version map is append-only and written by the swapper while
        // readers wait on futures; a mutex-free handoff is fine because
        // every read happens after the swapper joined.
        std::map<uint64_t, int> shift_of_version;
        const uint64_t first = router.InstallSlot(
            "main", std::make_shared<RotateReranker>(race.shifts[0]));
        if (first == 0) return false;
        shift_of_version[first] = race.shifts[0];

        std::vector<std::pair<uint64_t, int>> later;
        std::thread swapper([&] {
          for (size_t i = 1; i < race.shifts.size(); ++i) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            const uint64_t version = router.InstallSlot(
                "main", std::make_shared<RotateReranker>(race.shifts[i]));
            later.emplace_back(version, race.shifts[i]);
          }
        });

        std::vector<std::pair<data::ImpressionList,
                              std::future<serve::RouterResponse>>> pending;
        for (int i = 0; i < race.submissions; ++i) {
          serve::RouterRequest request;
          request.slot = "main";
          request.list = ListOf(i % 4, 2 + i % 9);
          data::ImpressionList input = request.list;
          pending.emplace_back(std::move(input),
                               router.Submit(std::move(request)));
        }
        swapper.join();
        uint64_t max_version = first;
        for (const auto& [version, shift] : later) {
          if (version == 0 || version <= max_version) {
            return false;  // Swaps publish strictly increasing versions.
          }
          max_version = version;
          shift_of_version[version] = shift;
        }
        for (auto& [input, future] : pending) {
          const serve::RouterResponse response = future.get();
          if (response.degraded) return false;  // Slot published throughout.
          if (!ResponseMatchesStampedVersion(response, input,
                                             shift_of_version)) {
            return false;
          }
        }
        router.Shutdown();
        return true;
      },
      [](const SwapRace& race) {
        std::ostringstream os;
        os << race.submissions << " submissions racing installs of shifts [";
        for (size_t i = 0; i < race.shifts.size(); ++i) {
          if (i > 0) os << ' ';
          os << race.shifts[i];
        }
        os << "]";
        return os.str();
      }));
}

}  // namespace
}  // namespace rapid
