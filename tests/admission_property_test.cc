// Property suite for admission control and the two-lane bounded queue
// (serve/admission.h, serve/request_queue.h): the ROADMAP invariant is
// that the shed path never starves the low lane. Concretely, under an
// arbitrary interleaving of pushes and pops,
//
//   - the drain never bypasses waiting low-lane work more than
//     `bursts_per_yield` times in a row;
//   - each lane stays FIFO and no item is lost or duplicated;
//   - `Admit` is monotone in queue depth, the high lane never sheds
//     before the low lane, and `kBlock` never sheds at all;
//   - slot-quota charges never push a slot's queued depth past its limit,
//     and unquota'd slots are never refused;
//   - end-to-end, a shedding router resolves every submitted future.
//
// Counterexamples shrink to a minimal schedule and print a replayable
// seed (see tests/proptest.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/types.h"
#include "proptest.h"
#include "rerank/reranker.h"
#include "serve/admission.h"
#include "serve/request_queue.h"
#include "serve/router.h"

namespace rapid {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Queue drain: the starvation bound itself.

/// One queue schedule: an op string over {push-high, push-low, pop} plus
/// the configured burst allowance.
struct QueueSchedule {
  std::vector<int> ops;  // 0 = push high, 1 = push low, 2 = pop.
  int bursts = 4;
};

QueueSchedule RandomQueueSchedule(std::mt19937_64& rng) {
  QueueSchedule schedule;
  std::uniform_int_distribution<int> len(1, 160);
  std::uniform_int_distribution<int> op(0, 2);
  std::uniform_int_distribution<int> bursts(1, 6);
  schedule.ops.resize(static_cast<size_t>(len(rng)));
  for (int& o : schedule.ops) o = op(rng);
  schedule.bursts = bursts(rng);
  return schedule;
}

std::vector<QueueSchedule> ShrinkQueueSchedule(const QueueSchedule& schedule) {
  std::vector<QueueSchedule> out;
  for (std::vector<int>& ops : proptest::ShrinkOps(schedule.ops)) {
    out.push_back({std::move(ops), schedule.bursts});
  }
  if (schedule.bursts > 1) out.push_back({schedule.ops, 1});
  return out;
}

std::string DescribeQueueSchedule(const QueueSchedule& schedule) {
  std::ostringstream os;
  os << "bursts=" << schedule.bursts << " ops(H/L/pop)=[";
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    os << "HLP"[schedule.ops[i]];
  }
  os << "]";
  return os.str();
}

/// Replays the schedule against a real queue while tracking a model of
/// both lanes. Values encode (sequence, lane) so FIFO violations, losses,
/// and duplications are all distinguishable.
bool CheckQueueDrain(const QueueSchedule& schedule) {
  serve::BoundedRequestQueue<int> queue(schedule.ops.size() + 1,
                                        /*num_lanes=*/2, schedule.bursts);
  std::deque<int> expected[2];
  int next = 0;
  int bypass_streak = 0;
  size_t queued = 0;

  auto pop_one = [&]() {
    const bool low_waiting = queue.lane_size(1) > 0;
    std::vector<int> got;
    if (queue.PopBatch(1, 0us, &got) != 1) return false;
    const int lane = got[0] % 2;
    if (expected[lane].empty() || expected[lane].front() != got[0]) {
      return false;  // Lost, duplicated, or out of FIFO order.
    }
    expected[lane].pop_front();
    --queued;
    if (lane == 0 && low_waiting) {
      // The starvation bound: at most `bursts` consecutive high pops may
      // bypass waiting low work before a low item is served.
      if (++bypass_streak > schedule.bursts) return false;
    } else {
      bypass_streak = 0;
    }
    return true;
  };

  for (int op : schedule.ops) {
    if (op == 2) {
      if (queued == 0) continue;  // A blocking pop would hang; skip.
      if (!pop_one()) return false;
      continue;
    }
    const int value = next * 2 + op;
    ++next;
    if (queue.TryPush(int{value}, static_cast<size_t>(op)) !=
        serve::BoundedRequestQueue<int>::PushResult::kOk) {
      return false;  // Capacity covers every push; kFull is a bug.
    }
    expected[op].push_back(value);
    ++queued;
  }
  while (queued > 0) {
    if (!pop_one()) return false;
  }
  return expected[0].empty() && expected[1].empty();
}

TEST(AdmissionPropertyTest, DrainNeverStarvesTheLowLane) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260822, /*trials=*/80, RandomQueueSchedule,
      ShrinkQueueSchedule, CheckQueueDrain, DescribeQueueSchedule));
}

// ---------------------------------------------------------------------------
// Admit: watermark ordering and monotonicity.

struct AdmitCase {
  int capacity = 1;
  int low_watermark = 0;
  int high_watermark = 0;
};

TEST(AdmissionPropertyTest, AdmitIsMonotoneAndHighLaneShedsLast) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260823, /*trials=*/200,
      [](std::mt19937_64& rng) {
        std::uniform_int_distribution<int> capacity(1, 64);
        AdmitCase c;
        c.capacity = capacity(rng);
        std::uniform_int_distribution<int> mark(0, c.capacity + 16);
        c.low_watermark = mark(rng);
        c.high_watermark = mark(rng);
        return c;
      },
      [](const AdmitCase& c) {
        std::vector<AdmitCase> out;
        if (c.low_watermark > 0) out.push_back({c.capacity, 0, c.high_watermark});
        if (c.high_watermark > 0) out.push_back({c.capacity, c.low_watermark, 0});
        return out;
      },
      [](const AdmitCase& c) {
        serve::AdmissionConfig config;
        config.policy = serve::AdmissionPolicy::kShed;
        config.low_lane_watermark = c.low_watermark;
        config.high_lane_watermark = c.high_watermark;
        serve::AdmissionController shed(config, c.capacity);
        config.policy = serve::AdmissionPolicy::kBlock;
        serve::AdmissionController block(config, c.capacity);

        // Resolved watermarks: positive, capped by capacity, ordered.
        const size_t low = shed.watermark(serve::Lane::kLow);
        const size_t high = shed.watermark(serve::Lane::kHigh);
        if (low < 1 || high < low ||
            high > static_cast<size_t>(c.capacity)) {
          return false;
        }
        bool low_admitted = true;
        bool high_admitted = true;
        for (size_t depth = 0;
             depth <= static_cast<size_t>(c.capacity) + 4; ++depth) {
          const bool admit_low = shed.Admit(serve::Lane::kLow, depth);
          const bool admit_high = shed.Admit(serve::Lane::kHigh, depth);
          // Once a lane sheds at some depth it sheds at every deeper one.
          if (admit_low && !low_admitted) return false;
          if (admit_high && !high_admitted) return false;
          low_admitted = admit_low;
          high_admitted = admit_high;
          // The high lane never sheds while the low lane still admits.
          if (admit_low && !admit_high) return false;
          // Blocking backpressure never sheds.
          if (!block.Admit(serve::Lane::kLow, depth) ||
              !block.Admit(serve::Lane::kHigh, depth)) {
            return false;
          }
        }
        return true;
      },
      [](const AdmitCase& c) {
        std::ostringstream os;
        os << "capacity=" << c.capacity << " low_wm=" << c.low_watermark
           << " high_wm=" << c.high_watermark;
        return os.str();
      }));
}

// ---------------------------------------------------------------------------
// Slot quotas: the charged depth never exceeds the limit.

struct QuotaSchedule {
  int limit = 1;              // Configured quota (clamped to >= 1).
  std::vector<int> ops;       // 0 = charge quota'd, 1 = release quota'd,
                              // 2 = charge unquota'd slot.
};

TEST(AdmissionPropertyTest, QuotaChargesNeverExceedTheLimit) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260824, /*trials=*/120,
      [](std::mt19937_64& rng) {
        QuotaSchedule schedule;
        std::uniform_int_distribution<int> limit(-1, 4);
        std::uniform_int_distribution<int> len(1, 80);
        std::uniform_int_distribution<int> op(0, 2);
        schedule.limit = limit(rng);
        schedule.ops.resize(static_cast<size_t>(len(rng)));
        for (int& o : schedule.ops) o = op(rng);
        return schedule;
      },
      [](const QuotaSchedule& schedule) {
        std::vector<QuotaSchedule> out;
        for (std::vector<int>& ops : proptest::ShrinkOps(schedule.ops)) {
          out.push_back({schedule.limit, std::move(ops)});
        }
        return out;
      },
      [](const QuotaSchedule& schedule) {
        serve::AdmissionConfig config;
        config.slot_quotas.emplace_back("tenant", schedule.limit);
        serve::AdmissionController admission(config, 64);
        const int limit = std::max(schedule.limit, 1);  // Documented clamp.
        int depth = 0;
        for (int op : schedule.ops) {
          if (op == 0) {
            const bool charged = admission.TryChargeSlot("tenant");
            if (charged != (depth < limit)) return false;
            if (charged) ++depth;
          } else if (op == 1) {
            if (depth == 0) continue;  // Releases must balance charges.
            admission.ReleaseSlot("tenant");
            --depth;
          } else if (!admission.TryChargeSlot("free")) {
            return false;  // Slots without a quota always admit.
          }
          if (admission.SlotDepth("tenant") != depth) return false;
          if (admission.SlotDepth("free") != 0) return false;
        }
        return true;
      },
      [](const QuotaSchedule& schedule) {
        std::ostringstream os;
        os << "limit=" << schedule.limit << " ops(C/R/F)=[";
        for (int op : schedule.ops) os << "CRF"[op];
        os << "]";
        return os.str();
      }));
}

// ---------------------------------------------------------------------------
// End to end: a shedding router loses no submission.

class RotateReranker : public rerank::Reranker {
 public:
  explicit RotateReranker(int shift, int stall_us = 0)
      : shift_(shift), stall_us_(stall_us) {}

  std::string name() const override {
    return "rotate-" + std::to_string(shift_);
  }

  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    if (stall_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    }
    std::vector<int> out = list.items;
    if (!out.empty()) {
      std::rotate(out.begin(),
                  out.begin() + (shift_ % static_cast<int>(out.size())),
                  out.end());
    }
    return out;
  }

 private:
  const int shift_;
  const int stall_us_;
};

struct RouterLoad {
  int low_watermark = 0;
  int high_watermark = 0;
  std::vector<int> lanes;  // 0 = high, 1 = low, one entry per request.
};

TEST(AdmissionPropertyTest, SheddingRouterResolvesEverySubmission) {
  const data::Dataset data;
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260825, /*trials=*/6,
      [](std::mt19937_64& rng) {
        RouterLoad load;
        std::uniform_int_distribution<int> mark(0, 10);
        std::uniform_int_distribution<int> count(1, 36);
        std::uniform_int_distribution<int> lane(0, 1);
        load.low_watermark = mark(rng);
        load.high_watermark = mark(rng);
        load.lanes.resize(static_cast<size_t>(count(rng)));
        for (int& l : load.lanes) l = lane(rng);
        return load;
      },
      [](const RouterLoad& load) {
        std::vector<RouterLoad> out;
        for (std::vector<int>& lanes : proptest::ShrinkOps(load.lanes)) {
          out.push_back(
              {load.low_watermark, load.high_watermark, std::move(lanes)});
        }
        return out;
      },
      [&data](const RouterLoad& load) {
        serve::RouterConfig config;
        config.num_threads = 2;
        config.queue_capacity = 8;
        config.admission.policy = serve::AdmissionPolicy::kShed;
        config.admission.low_lane_watermark = load.low_watermark;
        config.admission.high_lane_watermark = load.high_watermark;
        serve::ServingRouter router(data, config);
        router.InstallSlot("main",
                           std::make_shared<RotateReranker>(1, /*stall_us=*/300));

        data::ImpressionList list;
        for (int i = 0; i < 8; ++i) {
          list.items.push_back(i);
          list.scores.push_back(1.0f - 0.1f * static_cast<float>(i));
        }
        std::vector<std::future<serve::RouterResponse>> futures;
        for (int lane : load.lanes) {
          serve::RouterRequest request;
          request.slot = "main";
          request.lane = lane == 0 ? serve::Lane::kHigh : serve::Lane::kLow;
          request.list = list;
          futures.push_back(router.Submit(std::move(request)));
        }
        std::vector<int> sorted = list.items;
        std::sort(sorted.begin(), sorted.end());
        for (auto& future : futures) {
          serve::RouterResponse response = future.get();  // Must resolve.
          if (response.shed && !response.degraded) return false;
          // Shed or served, the answer is always a permutation of the input.
          std::vector<int> items = response.items;
          std::sort(items.begin(), items.end());
          if (items != sorted) return false;
        }
        router.Shutdown();
        return true;
      },
      [](const RouterLoad& load) {
        std::ostringstream os;
        os << "low_wm=" << load.low_watermark
           << " high_wm=" << load.high_watermark << " lanes=[";
        for (int lane : load.lanes) os << "HL"[lane];
        os << "]";
        return os.str();
      }));
}

}  // namespace
}  // namespace rapid
