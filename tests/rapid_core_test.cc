#include "core/rapid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "click/dcm.h"
#include "datagen/simulator.h"

namespace rapid::core {
namespace {

class RapidTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 25;
    cfg.num_items = 150;
    cfg.rerank_lists_per_user = 3;
    data_ = data::GenerateDataset(cfg, 71);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(3);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 12);
      for (int i = 0; i < 12; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }

  RapidConfig FastConfig() {
    RapidConfig cfg;
    cfg.train.epochs = 2;
    cfg.hidden_dim = 8;
    return cfg;
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

TEST_F(RapidTest, NamesFollowConfiguration) {
  RapidConfig cfg;
  EXPECT_EQ(RapidReranker(cfg).name(), "RAPID-pro");
  cfg.head = OutputHead::kDeterministic;
  EXPECT_EQ(RapidReranker(cfg).name(), "RAPID-det");
  cfg = RapidConfig();
  cfg.diversity_aggregator = DiversityAggregator::kNone;
  EXPECT_EQ(RapidReranker(cfg).name(), "RAPID-RNN");
  cfg = RapidConfig();
  cfg.diversity_aggregator = DiversityAggregator::kMean;
  EXPECT_EQ(RapidReranker(cfg).name(), "RAPID-mean");
  cfg = RapidConfig();
  cfg.relevance_encoder = RelevanceEncoder::kTransformer;
  EXPECT_EQ(RapidReranker(cfg).name(), "RAPID-trans");
}

class RapidVariantTest : public RapidTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(RapidVariantTest, TrainsAndProducesPermutations) {
  RapidConfig cfg;
  cfg.train.epochs = 2;
  cfg.hidden_dim = 8;
  switch (GetParam()) {
    case 0:
      break;  // RAPID-pro
    case 1:
      cfg.head = OutputHead::kDeterministic;
      break;
    case 2:
      cfg.diversity_aggregator = DiversityAggregator::kNone;
      break;
    case 3:
      cfg.diversity_aggregator = DiversityAggregator::kMean;
      break;
    case 4:
      cfg.relevance_encoder = RelevanceEncoder::kTransformer;
      break;
  }
  RapidReranker model(cfg);
  model.Fit(data_, train_, 11);
  EXPECT_GT(model.final_loss(), 0.0f);
  // 2 epochs on 75 tiny lists: just check the loss is in a sane BCE range.
  EXPECT_LT(model.final_loss(), 0.8f) << model.name();
  auto out = model.Rerank(data_, train_[0]);
  std::multiset<int> sa(out.begin(), out.end()),
      sb(train_[0].items.begin(), train_[0].items.end());
  EXPECT_EQ(sa, sb) << model.name();
}

INSTANTIATE_TEST_SUITE_P(Variants, RapidVariantTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST_F(RapidTest, PreferenceDistributionShapeAndRange) {
  RapidReranker model(FastConfig());
  model.Fit(data_, train_, 12);
  auto theta = model.PreferenceDistribution(data_, 0);
  EXPECT_EQ(static_cast<int>(theta.size()), data_.num_topics);
  for (float t : theta) {
    EXPECT_GE(t, 0.0f);
    EXPECT_LE(t, 1.0f);
  }
}

TEST_F(RapidTest, PreferenceDiffersAcrossUsers) {
  RapidReranker model(FastConfig());
  model.Fit(data_, train_, 13);
  auto t0 = model.PreferenceDistribution(data_, 0);
  bool any_differs = false;
  for (int u = 1; u < 10; ++u) {
    auto tu = model.PreferenceDistribution(data_, u);
    for (int j = 0; j < data_.num_topics; ++j) {
      if (std::fabs(tu[j] - t0[j]) > 1e-3f) any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs) << "theta must be personalized";
}

TEST_F(RapidTest, ProbabilisticInferenceIsDeterministic) {
  // UCB scoring must not consume randomness: same list, same scores.
  RapidReranker model(FastConfig());
  model.Fit(data_, train_, 14);
  auto s1 = model.ScoreList(data_, train_[0]);
  auto s2 = model.ScoreList(data_, train_[0]);
  EXPECT_EQ(s1, s2);
}

TEST_F(RapidTest, UcbScoresAtLeastMeanScores) {
  // The probabilistic head adds a nonnegative sigma at inference, so its
  // scores upper-bound the deterministic mean head's output of the same
  // trained model. Train pro, compare its UCB vs mean part indirectly:
  // sigma = softplus(.) > 0 implies UCB > mean is guaranteed by
  // construction; here we assert scores are finite and ordered output
  // works.
  RapidReranker model(FastConfig());
  model.Fit(data_, train_, 15);
  auto scores = model.ScoreList(data_, train_[0]);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_F(RapidTest, TrainingIsSeedDeterministic) {
  RapidReranker a(FastConfig()), b(FastConfig());
  a.Fit(data_, train_, 77);
  b.Fit(data_, train_, 77);
  EXPECT_EQ(a.Rerank(data_, train_[2]), b.Rerank(data_, train_[2]));
}

TEST_F(RapidTest, HandlesUsersWithEmptyTopicSequences) {
  // A user whose history misses some topics entirely must still get a
  // valid theta (masked LSTM path).
  RapidReranker model(FastConfig());
  model.Fit(data_, train_, 16);
  for (int u = 0; u < 20; ++u) {
    auto theta = model.PreferenceDistribution(data_, u);
    for (float t : theta) EXPECT_TRUE(std::isfinite(t));
  }
}

TEST_F(RapidTest, ShortListsHandled) {
  RapidReranker model(FastConfig());
  model.Fit(data_, train_, 17);
  data::ImpressionList tiny;
  tiny.user_id = 0;
  tiny.items = {3, 9};
  tiny.scores = {0.9f, 0.1f};
  auto out = model.Rerank(data_, tiny);
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace rapid::core
