#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "net/codec.h"
#include "proptest.h"

// Property-based coverage of the wire codec: decode(encode(x)) == x for
// every frame type (checked structurally *and* by re-encoding to the same
// bytes), and no input buffer — random or a mutation of a valid frame —
// may crash the decoder. The example-based tests in net_codec_test.cc pin
// the layout; these sweep the input space around it.

namespace rapid {
namespace {

std::string RandomSlot(std::mt19937_64& rng, size_t max_len = 24) {
  std::string out;
  const size_t n = rng() % (max_len + 1);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('a' + rng() % 26));
  }
  return out;
}

// ---------------------------------------------------------------------------
// decode . encode = id

net::WireFeedback RandomFeedback(std::mt19937_64& rng) {
  net::WireFeedback feedback;
  feedback.request_id = rng();
  feedback.slot = RandomSlot(rng);
  feedback.model_version = rng() % 1000;
  feedback.user_id = static_cast<int>(rng() % 10'000);
  const size_t n = rng() % 64;
  for (size_t i = 0; i < n; ++i) {
    feedback.items.push_back(static_cast<int>(rng() % 100'000));
    feedback.clicks.push_back(static_cast<uint8_t>(rng() & 1));
  }
  return feedback;
}

std::vector<net::WireFeedback> ShrinkFeedback(const net::WireFeedback& f) {
  std::vector<net::WireFeedback> out;
  if (!f.items.empty()) {
    net::WireFeedback half = f;
    half.items.resize(f.items.size() / 2);
    half.clicks.resize(f.items.size() / 2);
    out.push_back(std::move(half));
    net::WireFeedback one_less = f;
    one_less.items.pop_back();
    one_less.clicks.pop_back();
    out.push_back(std::move(one_less));
  }
  if (!f.slot.empty()) {
    net::WireFeedback no_slot = f;
    no_slot.slot.clear();
    out.push_back(std::move(no_slot));
  }
  return out;
}

std::string DescribeFeedback(const net::WireFeedback& f) {
  std::ostringstream os;
  os << "slot='" << f.slot << "' user=" << f.user_id << " items="
     << f.items.size();
  return os.str();
}

TEST(CodecPropertyTest, FeedbackDecodeEncodeIsIdentity) {
  EXPECT_TRUE(proptest::ForAll(
      20260808, 300, RandomFeedback, ShrinkFeedback,
      [](const net::WireFeedback& feedback) {
        std::vector<uint8_t> bytes;
        net::EncodeFeedback(feedback, &bytes);
        size_t consumed = 0;
        net::Frame frame;
        if (net::ExtractFrame(bytes.data(), bytes.size(), &consumed,
                              &frame) != net::DecodeStatus::kOk ||
            consumed != bytes.size()) {
          return false;
        }
        net::WireFeedback decoded;
        if (!net::ParseFeedback(frame, &decoded)) return false;
        if (decoded.request_id != feedback.request_id ||
            decoded.slot != feedback.slot ||
            decoded.model_version != feedback.model_version ||
            decoded.user_id != feedback.user_id ||
            decoded.items != feedback.items ||
            decoded.clicks != feedback.clicks) {
          return false;
        }
        // Re-encode: identity must hold byte-for-byte, not just field-wise.
        std::vector<uint8_t> again;
        net::EncodeFeedback(decoded, &again);
        return again == bytes;
      },
      DescribeFeedback));
}

net::WireRequest RandomScoreRequest(std::mt19937_64& rng) {
  net::WireRequest request;
  request.request_id = rng();
  request.slot = RandomSlot(rng);
  request.lane = (rng() & 1) ? serve::Lane::kLow : serve::Lane::kHigh;
  request.deadline_us = static_cast<int64_t>(rng() % 1'000'000);
  request.list.user_id = static_cast<int>(rng() % 10'000);
  const size_t n = rng() % 48;
  std::uniform_real_distribution<float> score(-100.0f, 100.0f);
  for (size_t i = 0; i < n; ++i) {
    request.list.items.push_back(static_cast<int>(rng() % 100'000));
    request.list.scores.push_back(score(rng));
  }
  return request;
}

std::vector<net::WireRequest> ShrinkScoreRequest(const net::WireRequest& r) {
  std::vector<net::WireRequest> out;
  if (!r.list.items.empty()) {
    net::WireRequest half = r;
    half.list.items.resize(r.list.items.size() / 2);
    half.list.scores.resize(r.list.items.size() / 2);
    out.push_back(std::move(half));
  }
  if (!r.slot.empty()) {
    net::WireRequest no_slot = r;
    no_slot.slot.clear();
    out.push_back(std::move(no_slot));
  }
  return out;
}

TEST(CodecPropertyTest, ScoreRequestDecodeEncodeIsIdentity) {
  EXPECT_TRUE(proptest::ForAll(
      20260809, 300, RandomScoreRequest, ShrinkScoreRequest,
      [](const net::WireRequest& request) {
        std::vector<uint8_t> bytes;
        net::EncodeScoreRequest(request, &bytes);
        size_t consumed = 0;
        net::Frame frame;
        if (net::ExtractFrame(bytes.data(), bytes.size(), &consumed,
                              &frame) != net::DecodeStatus::kOk) {
          return false;
        }
        net::WireRequest decoded;
        if (!net::ParseScoreRequest(frame, &decoded)) return false;
        std::vector<uint8_t> again;
        net::EncodeScoreRequest(decoded, &again);
        return again == bytes;
      },
      [](const net::WireRequest& r) {
        return "slot='" + r.slot + "' items=" +
               std::to_string(r.list.items.size());
      }));
}

serve::RouterStats RandomRouterStats(std::mt19937_64& rng) {
  serve::RouterStats stats;
  stats.total.requests = rng() % 100'000;
  stats.total.fallbacks = rng() % 100;
  stats.total.shed = rng() % 100;
  stats.total.p50_us = static_cast<double>(rng() % 10'000);
  stats.total.p95_us = static_cast<double>(rng() % 10'000);
  stats.total.p99_us = static_cast<double>(rng() % 10'000);
  stats.total.mean_us = static_cast<double>(rng() % 10'000);
  stats.total.max_us = rng() % 1'000'000;
  stats.total.batches = rng() % 1000;
  stats.total.batched_lists = rng() % 1000;
  for (int i = 0; i < 6; ++i) {
    stats.total.batch_size_hist[rng() % stats.total.batch_size_hist.size()] =
        rng() % 50;
    stats.total.latency_hist[rng() % serve::ServingStats::kLatencyHistBins] =
        rng() % 50;
  }
  stats.cache.hits = rng() % 1000;
  stats.cache.misses = rng() % 1000;
  stats.unknown_slot = rng() % 10;
  if (rng() & 1) {
    stats.has_net = true;
    stats.net.frames_in = rng() % 10'000;
    stats.net.feedback_frames = rng() % 1000;
    stats.net.dropped_responses = rng() % 10;
  }
  if (rng() & 1) {
    stats.has_online = true;
    stats.online.feedback_appended = rng() % 10'000;
    stats.online.feedback_dropped = rng() % 100;
    stats.online.train_rounds = rng() % 1000;
    stats.online.publishes = rng() % 100;
    stats.online.last_published_version = rng() % 100;
  }
  if (rng() & 1) {
    stats.has_page = true;
    stats.page.pages = rng() % 10'000;
    stats.page.page_lists = rng() % 100'000;
    stats.page.joint_pages = rng() % 10'000;
    stats.page.degraded_pages = rng() % 100;
    for (int i = 0; i < 3; ++i) {
      stats.page.lists_per_page_hist[rng() %
                                     serve::PageStats::kListsHistBins] =
          rng() % 50;
    }
    stats.page.redundancy_millitopics = rng() % 100'000;
    stats.page.max_lists_per_page = static_cast<int>(rng() % 64);
  }
  const size_t slots = rng() % 4;
  for (size_t i = 0; i < slots; ++i) {
    serve::RouterStats::SlotEntry slot;
    slot.slot = RandomSlot(rng, 12);
    slot.model_name = RandomSlot(rng, 12);
    slot.version = rng() % 100;
    slot.stats.requests = rng() % 10'000;
    slot.cache.hits = rng() % 100;
    stats.slots.push_back(std::move(slot));
  }
  return stats;
}

std::vector<serve::RouterStats> ShrinkRouterStats(
    const serve::RouterStats& s) {
  std::vector<serve::RouterStats> out;
  if (!s.slots.empty()) {
    serve::RouterStats fewer = s;
    fewer.slots.pop_back();
    out.push_back(std::move(fewer));
  }
  if (s.has_online) {
    serve::RouterStats no_online = s;
    no_online.has_online = false;
    no_online.online = serve::OnlineStats{};
    out.push_back(std::move(no_online));
  }
  if (s.has_net) {
    serve::RouterStats no_net = s;
    no_net.has_net = false;
    no_net.net = serve::NetStats{};
    out.push_back(std::move(no_net));
  }
  if (s.has_page) {
    serve::RouterStats no_page = s;
    no_page.has_page = false;
    no_page.page = serve::PageStats{};
    out.push_back(std::move(no_page));
  }
  return out;
}

TEST(CodecPropertyTest, BinaryStatsDecodeEncodeIsIdentity) {
  EXPECT_TRUE(proptest::ForAll(
      20260810, 150, RandomRouterStats, ShrinkRouterStats,
      [](const serve::RouterStats& stats) {
        net::WireStatsResponse response;
        response.request_id = 99;
        response.format = net::StatsFormat::kBinary;
        response.stats = stats;
        std::vector<uint8_t> bytes;
        net::EncodeStatsResponse(response, &bytes);
        size_t consumed = 0;
        net::Frame frame;
        if (net::ExtractFrame(bytes.data(), bytes.size(), &consumed,
                              &frame) != net::DecodeStatus::kOk) {
          return false;
        }
        net::WireStatsResponse decoded;
        if (!net::ParseStatsResponse(frame, &decoded)) return false;
        std::vector<uint8_t> again;
        net::EncodeStatsResponse(decoded, &again);
        return again == bytes;
      },
      [](const serve::RouterStats& s) {
        return "slots=" + std::to_string(s.slots.size()) +
               (s.has_net ? " net" : "") + (s.has_online ? " online" : "");
      }));
}

TEST(CodecPropertyTest, LoadFramesDecodeEncodeIsIdentity) {
  struct LoadPair {
    net::WireLoadRequest request;
    net::WireLoadResponse response;
  };
  EXPECT_TRUE(proptest::ForAll(
      20260811, 200,
      [](std::mt19937_64& rng) {
        LoadPair pair;
        pair.request.request_id = rng();
        pair.request.slot = RandomSlot(rng);
        pair.request.path = "/tmp/" + RandomSlot(rng, 40);
        pair.response.request_id = rng();
        pair.response.version = rng() % 100;
        pair.response.message = RandomSlot(rng, 40);
        return pair;
      },
      [](const LoadPair& p) {
        std::vector<LoadPair> out;
        if (!p.request.path.empty() || !p.response.message.empty()) {
          LoadPair bare = p;
          bare.request.path.clear();
          bare.response.message.clear();
          out.push_back(std::move(bare));
        }
        return out;
      },
      [](const LoadPair& pair) {
        std::vector<uint8_t> bytes;
        net::EncodeLoadRequest(pair.request, &bytes);
        net::EncodeLoadResponse(pair.response, &bytes);
        size_t consumed = 0;
        net::Frame frame;
        if (net::ExtractFrame(bytes.data(), bytes.size(), &consumed,
                              &frame) != net::DecodeStatus::kOk) {
          return false;
        }
        net::WireLoadRequest request;
        if (!net::ParseLoadRequest(frame, &request) ||
            request.slot != pair.request.slot ||
            request.path != pair.request.path) {
          return false;
        }
        net::Frame frame2;
        size_t consumed2 = 0;
        if (net::ExtractFrame(bytes.data() + consumed,
                              bytes.size() - consumed, &consumed2,
                              &frame2) != net::DecodeStatus::kOk) {
          return false;
        }
        net::WireLoadResponse response;
        return net::ParseLoadResponse(frame2, &response) &&
               response.version == pair.response.version &&
               response.message == pair.response.message;
      },
      [](const LoadPair& p) { return "slot='" + p.request.slot + "'"; }));
}

net::WirePageRequest RandomPageRequest(std::mt19937_64& rng) {
  net::WirePageRequest request;
  request.request_id = rng();
  request.slot = RandomSlot(rng);
  request.lane = (rng() & 1) ? serve::Lane::kLow : serve::Lane::kHigh;
  request.deadline_us = static_cast<int64_t>(rng() % 1'000'000);
  request.user_id = static_cast<int>(rng() % 10'000);
  std::uniform_real_distribution<float> budget(0.0f, 8.0f);
  request.diversity_budget = budget(rng);
  request.joint = static_cast<uint8_t>(rng() & 1);
  request.top_k = static_cast<int>(rng() % 20);
  const size_t num_lists = 1 + rng() % 6;
  std::uniform_real_distribution<float> score(-100.0f, 100.0f);
  for (size_t l = 0; l < num_lists; ++l) {
    data::ImpressionList list;
    const size_t n = rng() % 32;
    for (size_t i = 0; i < n; ++i) {
      list.items.push_back(static_cast<int>(rng() % 100'000));
      list.scores.push_back(score(rng));
    }
    request.lists.push_back(std::move(list));
  }
  return request;
}

std::vector<net::WirePageRequest> ShrinkPageRequest(
    const net::WirePageRequest& r) {
  std::vector<net::WirePageRequest> out;
  if (r.lists.size() > 1) {
    net::WirePageRequest fewer = r;
    fewer.lists.pop_back();
    out.push_back(std::move(fewer));
  }
  if (!r.lists.empty() && !r.lists.back().items.empty()) {
    net::WirePageRequest smaller = r;
    smaller.lists.back().items.resize(r.lists.back().items.size() / 2);
    smaller.lists.back().scores.resize(r.lists.back().items.size() / 2);
    out.push_back(std::move(smaller));
  }
  if (!r.slot.empty()) {
    net::WirePageRequest no_slot = r;
    no_slot.slot.clear();
    out.push_back(std::move(no_slot));
  }
  return out;
}

std::string DescribePageRequest(const net::WirePageRequest& r) {
  std::ostringstream os;
  os << "slot='" << r.slot << "' lists=" << r.lists.size();
  for (const data::ImpressionList& list : r.lists) {
    os << " n=" << list.items.size();
  }
  return os.str();
}

TEST(CodecPropertyTest, PageRequestDecodeEncodeIsIdentity) {
  EXPECT_TRUE(proptest::ForAll(
      20260814, 300, RandomPageRequest, ShrinkPageRequest,
      [](const net::WirePageRequest& request) {
        std::vector<uint8_t> bytes;
        net::EncodePageRequest(request, &bytes);
        size_t consumed = 0;
        net::Frame frame;
        if (net::ExtractFrame(bytes.data(), bytes.size(), &consumed,
                              &frame) != net::DecodeStatus::kOk ||
            consumed != bytes.size()) {
          return false;
        }
        net::WirePageRequest decoded;
        if (!net::ParsePageRequest(frame, &decoded)) return false;
        if (decoded.lists.size() != request.lists.size()) return false;
        std::vector<uint8_t> again;
        net::EncodePageRequest(decoded, &again);
        return again == bytes;
      },
      DescribePageRequest));
}

net::WirePageResponse RandomPageResponse(std::mt19937_64& rng) {
  net::WirePageResponse response;
  response.request_id = rng();
  response.degraded = (rng() & 1) != 0;
  response.model_name = RandomSlot(rng);
  response.model_version = rng() % 1000;
  response.server_latency_us = static_cast<int64_t>(rng() % 1'000'000);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  response.page_coverage = unit(rng);
  response.cross_list_redundancy = unit(rng);
  const size_t num_lists = rng() % 6;
  for (size_t l = 0; l < num_lists; ++l) {
    std::vector<int> items(rng() % 32);
    for (int& item : items) item = static_cast<int>(rng() % 100'000);
    response.lists.push_back(std::move(items));
  }
  return response;
}

TEST(CodecPropertyTest, PageResponseDecodeEncodeIsIdentity) {
  EXPECT_TRUE(proptest::ForAll(
      20260815, 300, RandomPageResponse,
      [](const net::WirePageResponse& r) {
        std::vector<net::WirePageResponse> out;
        if (!r.lists.empty()) {
          net::WirePageResponse fewer = r;
          fewer.lists.pop_back();
          out.push_back(std::move(fewer));
        }
        return out;
      },
      [](const net::WirePageResponse& response) {
        std::vector<uint8_t> bytes;
        net::EncodePageResponse(response, &bytes);
        size_t consumed = 0;
        net::Frame frame;
        if (net::ExtractFrame(bytes.data(), bytes.size(), &consumed,
                              &frame) != net::DecodeStatus::kOk) {
          return false;
        }
        net::WirePageResponse decoded;
        if (!net::ParsePageResponse(frame, &decoded)) return false;
        std::vector<uint8_t> again;
        net::EncodePageResponse(decoded, &again);
        return again == bytes;
      },
      [](const net::WirePageResponse& r) {
        return "lists=" + std::to_string(r.lists.size());
      }));
}

TEST(CodecPropertyTest, EveryStrictPagePrefixIsNeedMore) {
  EXPECT_TRUE(proptest::ForAll(
      20260816, 60, RandomPageRequest, ShrinkPageRequest,
      [](const net::WirePageRequest& request) {
        std::vector<uint8_t> bytes;
        net::EncodePageRequest(request, &bytes);
        for (size_t size = 0; size < bytes.size(); ++size) {
          size_t consumed = 0;
          net::Frame frame;
          if (net::ExtractFrame(bytes.data(), size, &consumed, &frame) !=
              net::DecodeStatus::kNeedMore) {
            return false;
          }
        }
        return true;
      },
      DescribePageRequest));
}

// ---------------------------------------------------------------------------
// No input may crash the decoder

bool DecoderSurvives(const std::vector<uint8_t>& bytes) {
  size_t consumed = 0;
  net::Frame frame;
  const net::DecodeStatus status =
      net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame);
  if (status == net::DecodeStatus::kOk) {
    if (consumed > bytes.size()) return false;
    // Throw every parser at the frame; any accept/reject outcome is fine,
    // crashing or reading out of bounds (ASan's department) is not.
    net::WireRequest request;
    net::WireResponse response;
    net::WireStatsRequest stats_request;
    net::WireStatsResponse stats_response;
    net::WireLoadRequest load_request;
    net::WireLoadResponse load_response;
    net::WireFeedback feedback;
    net::WireFeedbackAck ack;
    net::WirePageRequest page_request;
    net::WirePageResponse page_response;
    net::WireError error;
    net::ParseScoreRequest(frame, &request);
    net::ParseScoreResponse(frame, &response);
    net::ParseStatsRequest(frame, &stats_request);
    net::ParseStatsResponse(frame, &stats_response);
    net::ParseLoadRequest(frame, &load_request);
    net::ParseLoadResponse(frame, &load_response);
    net::ParseFeedback(frame, &feedback);
    net::ParseFeedbackAck(frame, &ack);
    net::ParsePageRequest(frame, &page_request);
    net::ParsePageResponse(frame, &page_response);
    net::ParseError(frame, &error);
  }
  return true;
}

TEST(CodecPropertyTest, ArbitraryBytesNeverCrashAnyParser) {
  EXPECT_TRUE(proptest::ForAll(
      20260812, 600,
      [](std::mt19937_64& rng) {
        std::vector<uint8_t> bytes(rng() % 512);
        for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng());
        return bytes;
      },
      proptest::ShrinkBytes, DecoderSurvives, proptest::DescribeBytes));
}

TEST(CodecPropertyTest, MutatedValidFramesNeverCrashAnyParser) {
  // Start from real frames of every type and corrupt them: mutations keep
  // enough structure to reach the payload parsers, where the interesting
  // bounds checks live.
  EXPECT_TRUE(proptest::ForAll(
      20260813, 600,
      [](std::mt19937_64& rng) {
        std::vector<uint8_t> bytes;
        switch (rng() % 6) {
          case 0:
            net::EncodeFeedback(RandomFeedback(rng), &bytes);
            break;
          case 1:
            net::EncodeScoreRequest(RandomScoreRequest(rng), &bytes);
            break;
          case 2: {
            net::WireStatsResponse response;
            response.format = net::StatsFormat::kBinary;
            response.stats = RandomRouterStats(rng);
            net::EncodeStatsResponse(response, &bytes);
            break;
          }
          case 3:
            net::EncodePageRequest(RandomPageRequest(rng), &bytes);
            break;
          case 4:
            net::EncodePageResponse(RandomPageResponse(rng), &bytes);
            break;
          default: {
            net::WireFeedbackAck ack;
            ack.accepted = true;
            ack.message = RandomSlot(rng);
            net::EncodeFeedbackAck(ack, &bytes);
            break;
          }
        }
        const size_t flips = 1 + rng() % 8;
        for (size_t i = 0; i < flips && !bytes.empty(); ++i) {
          bytes[rng() % bytes.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
        }
        if ((rng() % 4) == 0 && !bytes.empty()) {
          bytes.resize(rng() % bytes.size());  // Also tear the tail off.
        }
        return bytes;
      },
      proptest::ShrinkBytes, DecoderSurvives, proptest::DescribeBytes));
}

}  // namespace
}  // namespace rapid
