#include "bandit/linear_rapid.h"

#include <gtest/gtest.h>

#include "datagen/simulator.h"

namespace rapid::bandit {
namespace {

class BanditTest : public ::testing::Test {
 protected:
  BanditTest() {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 40;
    cfg.num_items = 250;
    data_ = data::GenerateDataset(cfg, 81);
    dcm_ = std::make_unique<click::GroundTruthClickModel>(
        &data_, click::DcmConfig{.lambda = 0.7f});
  }
  data::Dataset data_;
  std::unique_ptr<click::GroundTruthClickModel> dcm_;
};

TEST_F(BanditTest, FeatureDimension) {
  LinearRapidBandit bandit(&data_, {});
  // 1 (bias) + q_u + q_v + m (coverage) + m (pers. diversity) = 1+8+9+5+5.
  EXPECT_EQ(bandit.dim(), 28);
  EXPECT_EQ(BanditFeatureDim(data_), 28);
  auto eta = bandit.Features(0, {}, 3);
  EXPECT_EQ(static_cast<int>(eta.size()), bandit.dim());
  EXPECT_FLOAT_EQ(eta[0], 1.0f);  // Bias feature.
}

TEST_F(BanditTest, LinearEnvironmentAttractionMatchesOmega) {
  LinearDcmEnvironment env(&data_, 3);
  std::vector<int> items = {4, 9};
  const auto eta = BanditFeatures(data_, 0, {4}, 9);
  double expect = 0.0;
  for (size_t i = 0; i < eta.size(); ++i) {
    expect += env.omega_star()[i] * eta[i];
  }
  EXPECT_NEAR(env.Attraction(0, items, 1),
              std::clamp(expect, 0.0, 1.0), 1e-5);
}

TEST_F(BanditTest, LinearEnvironmentAttractionsInRange) {
  LinearDcmEnvironment env(&data_, 4);
  std::vector<int> items = {1, 2, 3, 4, 5};
  for (int pos = 0; pos < 5; ++pos) {
    const float a = env.Attraction(0, items, pos);
    EXPECT_GE(a, 0.0f);
    EXPECT_LE(a, 1.0f);
  }
}

TEST_F(BanditTest, LinearSettingRegretOverSqrtNFlattens) {
  LinearDcmEnvironment env(&data_, 5);
  const int rounds = 800;
  RegretCurve curve = RunRegretExperiment(
      data_, env, LinearRapidBandit::Config{}, rounds, 12, 9);
  // Consistent with O~(sqrt(n)): the normalized curve must not grow from
  // the first half to the second half.
  EXPECT_LE(curve.regret_over_sqrt_n[rounds - 1],
            curve.regret_over_sqrt_n[rounds / 2 - 1] * 1.1);
}

TEST_F(BanditTest, DiversityFeatureShrinksWithCoveredPrefix) {
  LinearRapidBandit bandit(&data_, {});
  auto eta_empty = bandit.Features(0, {}, 3);
  auto eta_prefixed = bandit.Features(0, {3}, 3);  // Same item as prefix.
  const int m = data_.num_topics;
  for (int j = 0; j < m; ++j) {
    const int idx = bandit.dim() - m + j;
    EXPECT_LE(eta_prefixed[idx], eta_empty[idx] + 1e-6f);
  }
}

TEST_F(BanditTest, UcbShrinksWithObservations) {
  LinearRapidBandit bandit(&data_, {});
  auto eta = bandit.Features(0, {}, 3);
  const float before = bandit.UcbScore(eta) - bandit.MeanScore(eta);
  // Feed the same context many times.
  for (int t = 0; t < 30; ++t) bandit.Update(0, {3}, {0});
  const float after = bandit.UcbScore(eta) - bandit.MeanScore(eta);
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0.0f);
}

TEST_F(BanditTest, SelectListSizeAndUniqueness) {
  LinearRapidBandit::Config cfg;
  cfg.k = 4;
  LinearRapidBandit bandit(&data_, cfg);
  std::vector<int> pool = {1, 5, 9, 13, 17, 21, 25};
  auto list = bandit.SelectList(0, pool);
  EXPECT_EQ(list.size(), 4u);
  std::set<int> uniq(list.begin(), list.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (int v : list) {
    EXPECT_TRUE(std::find(pool.begin(), pool.end(), v) != pool.end());
  }
}

TEST_F(BanditTest, GreedyOracleBeatsRandomOnTrueSatisfaction) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<int> item_dist(0, 249);
  double oracle_total = 0.0, random_total = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> pool;
    for (int i = 0; i < 15; ++i) pool.push_back(item_dist(rng));
    auto oracle = GreedyOracleList(data_, *dcm_, trial % 40, pool, 5);
    std::vector<int> random(pool.begin(), pool.begin() + 5);
    oracle_total += dcm_->TrueSatisfaction(trial % 40, oracle, 5);
    random_total += dcm_->TrueSatisfaction(trial % 40, random, 5);
  }
  EXPECT_GT(oracle_total, random_total);
}

TEST_F(BanditTest, BanditRegretSublinearVsRandomLinear) {
  const int rounds = 600;
  RegretCurve bandit_curve = RunRegretExperiment(
      data_, *dcm_, LinearRapidBandit::Config{}, rounds, 15, 5);
  RegretCurve random_curve =
      RunRandomPolicyExperiment(data_, *dcm_, 5, rounds, 15, 5);
  ASSERT_EQ(bandit_curve.cumulative_regret.size(),
            static_cast<size_t>(rounds));
  // The learning policy must beat uniform-random by a wide margin.
  EXPECT_LT(bandit_curve.cumulative_regret.back(),
            0.6 * random_curve.cumulative_regret.back());
  // Regret/sqrt(n) should not be exploding: the second-half maximum should
  // not exceed the first-half maximum by much (flattening curve).
  double first_half = 0.0, second_half = 0.0;
  for (int t = 0; t < rounds / 2; ++t) {
    first_half = std::max(first_half, bandit_curve.regret_over_sqrt_n[t]);
  }
  for (int t = rounds / 2; t < rounds; ++t) {
    second_half = std::max(second_half, bandit_curve.regret_over_sqrt_n[t]);
  }
  EXPECT_LT(second_half, first_half * 1.3);
}

TEST_F(BanditTest, CumulativeRegretIsNonDecreasing) {
  RegretCurve curve = RunRegretExperiment(
      data_, *dcm_, LinearRapidBandit::Config{}, 100, 12, 6);
  for (size_t t = 1; t < curve.cumulative_regret.size(); ++t) {
    EXPECT_GE(curve.cumulative_regret[t], curve.cumulative_regret[t - 1]);
  }
}

}  // namespace
}  // namespace rapid::bandit
