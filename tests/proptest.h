#ifndef RAPID_TESTS_PROPTEST_H_
#define RAPID_TESTS_PROPTEST_H_

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

// A deliberately small seeded property-testing harness: generate random
// inputs, check a predicate over each, and on the first failure greedily
// shrink the counterexample before reporting it. No macros, no global
// registry — just three callables:
//
//   proptest::ForAll(seed, trials,
//       /*gen=*/    [](std::mt19937_64& rng) -> T { ... },
//       /*shrink=*/ [](const T& v) -> std::vector<T> { ... },
//       /*check=*/  [](const T& v) -> bool { ... },
//       /*describe=*/[](const T& v) -> std::string { ... });
//
// returns a `testing::AssertionResult`, so tests wrap it in EXPECT_TRUE.
// `shrink` proposes strictly-smaller candidates; the harness repeatedly
// takes the first candidate that still fails until none do, yielding a
// locally minimal counterexample. Shrinking is budgeted (a bounded number
// of candidate checks and a wall-clock cap): when the budget runs out the
// harness reports the smallest counterexample found *so far* instead of
// spinning until full minimality — a slow `check` never turns one failure
// into a hung test run.
//
// ## Replaying a failing seed
//
// Every failure message prints the seed that produced it. The
// `RAPID_PROPTEST_SEED` environment variable overrides the seed passed to
// `ForAll` process-wide, so a failing run is replayed exactly with:
//
//   RAPID_PROPTEST_SEED=<seed> ./build/tests/<suite> --gtest_filter=<T>
//
// where <T> names the single failing test (Suite.TestName).
//
// Filter to the single failing test: the override applies to every
// `ForAll` in the process, and other tests in the binary would run under
// a seed they were not tuned for (legal, but noisy). Decimal and 0x-hex
// values are accepted. The same schedule, trial index, and shrink path
// are reproduced by construction — generation is a pure function of the
// seed, and fault schedules (`net::FaultPlan`) derive from it the same
// way.
namespace rapid::proptest {

/// Caps on the greedy shrink loop. `max_checks` bounds the total number
/// of candidate `check` calls spent shrinking one counterexample;
/// `time_limit` bounds its wall-clock. Whichever trips first ends the
/// shrink with the smallest still-failing value found so far.
struct ShrinkBudget {
  int max_checks = 2000;
  std::chrono::milliseconds time_limit{2000};
};

/// The `RAPID_PROPTEST_SEED` override: returns the env seed when the
/// variable is set to a parseable integer (decimal, or hex with 0x),
/// otherwise `default_seed`. `ForAll` applies this automatically; it is
/// exposed for tests that seed schedules outside the harness (e.g. the
/// fault-injection suites).
inline uint64_t SeedFromEnv(uint64_t default_seed) {
  const char* raw = std::getenv("RAPID_PROPTEST_SEED");
  if (raw == nullptr || *raw == '\0') return default_seed;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 0);
  if (end == raw || *end != '\0') return default_seed;
  static bool announced = false;
  if (!announced) {
    announced = true;
    std::fprintf(stderr,
                 "[proptest] RAPID_PROPTEST_SEED=%llu overrides every "
                 "ForAll seed in this process\n",
                 parsed);
  }
  return parsed;
}

template <typename T, typename Gen, typename Shrink, typename Check,
          typename Describe>
testing::AssertionResult ForAllImpl(uint64_t seed, int trials, Gen gen,
                                    Shrink shrink, Check check,
                                    Describe describe,
                                    ShrinkBudget budget = {}) {
  seed = SeedFromEnv(seed);
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    T value = gen(rng);
    if (check(value)) continue;
    // Greedy shrink: restart from the first still-failing candidate until
    // a fixed point or the budget runs out. `value` is always the
    // smallest still-failing input seen, so exhaustion degrades the
    // report from "minimal" to "smallest found so far" — never to a hang.
    const auto deadline = std::chrono::steady_clock::now() + budget.time_limit;
    int shrink_steps = 0;
    int checks_spent = 0;
    bool exhausted = false;
    for (bool shrunk = true; shrunk && !exhausted;) {
      shrunk = false;
      for (T& candidate : shrink(value)) {
        if (checks_spent >= budget.max_checks ||
            std::chrono::steady_clock::now() >= deadline) {
          exhausted = true;
          break;
        }
        ++checks_spent;
        if (!check(candidate)) {
          value = std::move(candidate);
          shrunk = true;
          ++shrink_steps;
          break;
        }
      }
    }
    return testing::AssertionFailure()
           << "property failed at trial " << trial << " (seed " << seed
           << ", " << shrink_steps << " shrink steps); "
           << (exhausted ? "shrink budget exhausted — smallest "
                           "counterexample found so far: "
                         : "minimal counterexample: ")
           << describe(value)
           << "\nreplay with: RAPID_PROPTEST_SEED=" << seed
           << " <test binary> --gtest_filter=<this test>";
  }
  return testing::AssertionSuccess();
}

template <typename Gen, typename Shrink, typename Check, typename Describe>
testing::AssertionResult ForAll(uint64_t seed, int trials, Gen gen,
                                Shrink shrink, Check check,
                                Describe describe, ShrinkBudget budget = {}) {
  using T = decltype(gen(std::declval<std::mt19937_64&>()));
  return ForAllImpl<T>(seed, trials, gen, shrink, check, describe, budget);
}

/// Standard shrinker for byte buffers: remove chunks of halving size from
/// every offset, then zero out individual non-zero bytes. Produces only
/// candidates that are smaller (or equal-size but simpler), so greedy
/// shrinking terminates.
inline std::vector<std::vector<uint8_t>> ShrinkBytes(
    const std::vector<uint8_t>& bytes) {
  std::vector<std::vector<uint8_t>> out;
  for (size_t chunk = bytes.size(); chunk >= 1; chunk /= 2) {
    for (size_t at = 0; at + chunk <= bytes.size(); at += chunk) {
      std::vector<uint8_t> candidate;
      candidate.reserve(bytes.size() - chunk);
      candidate.insert(candidate.end(), bytes.begin(),
                       bytes.begin() + static_cast<ptrdiff_t>(at));
      candidate.insert(candidate.end(),
                       bytes.begin() + static_cast<ptrdiff_t>(at + chunk),
                       bytes.end());
      out.push_back(std::move(candidate));
    }
    if (chunk == 1) break;
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == 0) continue;
    std::vector<uint8_t> candidate = bytes;
    candidate[i] = 0;
    out.push_back(std::move(candidate));
  }
  return out;
}

/// Standard shrinker for operation schedules (vectors of ops): drop the
/// back half, drop one op at every position, then drop single ops from
/// the back. Candidates are strictly shorter, so greedy shrinking
/// terminates; most schedule-shaped properties minimize well under it.
template <typename Op>
std::vector<std::vector<Op>> ShrinkOps(const std::vector<Op>& ops) {
  std::vector<std::vector<Op>> out;
  if (ops.empty()) return out;
  out.emplace_back(ops.begin(), ops.begin() + static_cast<ptrdiff_t>(ops.size() / 2));
  for (size_t skip = 0; skip < ops.size(); ++skip) {
    std::vector<Op> candidate;
    candidate.reserve(ops.size() - 1);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (i != skip) candidate.push_back(ops[i]);
    }
    out.push_back(std::move(candidate));
  }
  return out;
}

inline std::string DescribeBytes(const std::vector<uint8_t>& bytes) {
  std::ostringstream os;
  os << bytes.size() << " bytes [";
  const size_t shown = bytes.size() < 64 ? bytes.size() : 64;
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ' ';
    os << std::hex << static_cast<int>(bytes[i]) << std::dec;
  }
  if (shown < bytes.size()) os << " ...";
  os << "]";
  return os.str();
}

}  // namespace rapid::proptest

#endif  // RAPID_TESTS_PROPTEST_H_
