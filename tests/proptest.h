#ifndef RAPID_TESTS_PROPTEST_H_
#define RAPID_TESTS_PROPTEST_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

// A deliberately small seeded property-testing harness: generate random
// inputs, check a predicate over each, and on the first failure greedily
// shrink the counterexample before reporting it. No macros, no global
// registry — just three callables:
//
//   proptest::ForAll(seed, trials,
//       /*gen=*/    [](std::mt19937_64& rng) -> T { ... },
//       /*shrink=*/ [](const T& v) -> std::vector<T> { ... },
//       /*check=*/  [](const T& v) -> bool { ... },
//       /*describe=*/[](const T& v) -> std::string { ... });
//
// returns a `testing::AssertionResult`, so tests wrap it in EXPECT_TRUE.
// `shrink` proposes strictly-smaller candidates; the harness repeatedly
// takes the first candidate that still fails until none do, yielding a
// locally minimal counterexample. The seed is printed on failure so a run
// is reproducible by construction.
namespace rapid::proptest {

template <typename T, typename Gen, typename Shrink, typename Check,
          typename Describe>
testing::AssertionResult ForAllImpl(uint64_t seed, int trials, Gen gen,
                                    Shrink shrink, Check check,
                                    Describe describe) {
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    T value = gen(rng);
    if (check(value)) continue;
    // Greedy shrink: restart from the first still-failing candidate until
    // a fixed point. Bounded by total size, since candidates shrink.
    int shrink_steps = 0;
    for (bool shrunk = true; shrunk && shrink_steps < 10'000;) {
      shrunk = false;
      for (T& candidate : shrink(value)) {
        if (!check(candidate)) {
          value = std::move(candidate);
          shrunk = true;
          ++shrink_steps;
          break;
        }
      }
    }
    return testing::AssertionFailure()
           << "property failed at trial " << trial << " (seed " << seed
           << ", " << shrink_steps << " shrink steps); minimal "
           << "counterexample: " << describe(value);
  }
  return testing::AssertionSuccess();
}

template <typename Gen, typename Shrink, typename Check, typename Describe>
testing::AssertionResult ForAll(uint64_t seed, int trials, Gen gen,
                                Shrink shrink, Check check,
                                Describe describe) {
  using T = decltype(gen(std::declval<std::mt19937_64&>()));
  return ForAllImpl<T>(seed, trials, gen, shrink, check, describe);
}

/// Standard shrinker for byte buffers: remove chunks of halving size from
/// every offset, then zero out individual non-zero bytes. Produces only
/// candidates that are smaller (or equal-size but simpler), so greedy
/// shrinking terminates.
inline std::vector<std::vector<uint8_t>> ShrinkBytes(
    const std::vector<uint8_t>& bytes) {
  std::vector<std::vector<uint8_t>> out;
  for (size_t chunk = bytes.size(); chunk >= 1; chunk /= 2) {
    for (size_t at = 0; at + chunk <= bytes.size(); at += chunk) {
      std::vector<uint8_t> candidate;
      candidate.reserve(bytes.size() - chunk);
      candidate.insert(candidate.end(), bytes.begin(),
                       bytes.begin() + static_cast<ptrdiff_t>(at));
      candidate.insert(candidate.end(),
                       bytes.begin() + static_cast<ptrdiff_t>(at + chunk),
                       bytes.end());
      out.push_back(std::move(candidate));
    }
    if (chunk == 1) break;
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == 0) continue;
    std::vector<uint8_t> candidate = bytes;
    candidate[i] = 0;
    out.push_back(std::move(candidate));
  }
  return out;
}

inline std::string DescribeBytes(const std::vector<uint8_t>& bytes) {
  std::ostringstream os;
  os << bytes.size() << " bytes [";
  const size_t shown = bytes.size() < 64 ? bytes.size() : 64;
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ' ';
    os << std::hex << static_cast<int>(bytes[i]) << std::dec;
  }
  if (shown < bytes.size()) os << " ...";
  os << "]";
  return os.str();
}

}  // namespace rapid::proptest

#endif  // RAPID_TESTS_PROPTEST_H_
