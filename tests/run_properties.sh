#!/usr/bin/env bash
# Property-suite entry point: builds every test target labeled `property`
# in tests/CMakeLists.txt and runs them through ctest in one shot, with
# the seed policy printed up front so a red run is immediately
# replayable.
#
# Usage:
#   tests/run_properties.sh                      # default (baked-in) seeds
#   RAPID_PROPTEST_SEED=1234 tests/run_properties.sh   # replay one seed
#
# Every failure message printed by a property test already carries the
# seed that produced it; export RAPID_PROPTEST_SEED with that value (and
# optionally narrow to one binary/--gtest_filter, see tests/proptest.h)
# to reproduce the exact schedule, shrink path included.
#
# Requires a configured build tree (default ./build, override with
# BUILD_DIR).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

if [[ ! -d "$build_dir" ]]; then
  echo "error: build tree '$build_dir' not found (run cmake first)" >&2
  exit 1
fi

targets=(
  property_test
  codec_property_test
  ring_property_test
  admission_property_test
  router_property_test
  batch_property_test
  online_property_test
  net_fault_test
  page_property_test
)

echo "== property suites: ${targets[*]}"
if [[ -n "${RAPID_PROPTEST_SEED:-}" ]]; then
  echo "== seed: RAPID_PROPTEST_SEED=$RAPID_PROPTEST_SEED (overrides every ForAll seed)"
else
  echo "== seed: per-test defaults (failures print the seed to replay)"
fi

cmake --build "$build_dir" --parallel -t "${targets[@]}"

# -L property selects exactly the suites registered through
# rapid_add_property_test; the env seed (if any) propagates to the tests.
(cd "$build_dir" && ctest -L property --output-on-failure "$@")

echo "== property suites passed"
if [[ -n "${RAPID_PROPTEST_SEED:-}" ]]; then
  echo "== replayed under RAPID_PROPTEST_SEED=$RAPID_PROPTEST_SEED"
fi
