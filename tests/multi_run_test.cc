#include "eval/multi_run.h"

#include <gtest/gtest.h>

#include "rankers/svmrank.h"
#include "rerank/mmr.h"

namespace rapid::eval {
namespace {

PipelineConfig TinyConfig() {
  PipelineConfig cfg;
  cfg.sim.kind = data::DatasetKind::kTaobao;
  cfg.sim.num_users = 20;
  cfg.sim.num_items = 150;
  cfg.sim.rerank_lists_per_user = 2;
  cfg.sim.test_lists_per_user = 1;
  cfg.sim.candidates_per_request = 20;
  cfg.list_len = 8;
  cfg.seed = 10;
  return cfg;
}

std::vector<std::pair<std::string, MethodFactory>> TwoMethods() {
  return {
      {"Init",
       [] { return std::make_unique<rerank::InitReranker>(); }},
      {"MMR", [] { return std::make_unique<rerank::MmrReranker>(); }},
  };
}

TEST(MultiRunTest, AggregatesAcrossSeeds) {
  auto results = MultiSeedEvaluate(
      TinyConfig(), [] { return std::make_unique<rank::SvmRankRanker>(); },
      TwoMethods(), /*num_seeds=*/3);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "Init");
  ASSERT_EQ(results[0].per_seed_means.at("click@5").size(), 3u);
  EXPECT_GT(results[0].Mean("click@5"), 0.0);
  EXPECT_GE(results[0].StdDev("click@5"), 0.0);
}

TEST(MultiRunTest, SeedsProduceDifferentEnvironments) {
  auto results = MultiSeedEvaluate(
      TinyConfig(), [] { return std::make_unique<rank::SvmRankRanker>(); },
      TwoMethods(), 3);
  const auto& means = results[0].per_seed_means.at("click@5");
  // At least two of the three seeds must differ (different universes).
  EXPECT_TRUE(means[0] != means[1] || means[1] != means[2]);
}

TEST(MultiRunTest, DeterministicGivenSameBaseSeed) {
  auto a = MultiSeedEvaluate(
      TinyConfig(), [] { return std::make_unique<rank::SvmRankRanker>(); },
      TwoMethods(), 2);
  auto b = MultiSeedEvaluate(
      TinyConfig(), [] { return std::make_unique<rank::SvmRankRanker>(); },
      TwoMethods(), 2);
  EXPECT_EQ(a[1].per_seed_means.at("click@10"),
            b[1].per_seed_means.at("click@10"));
}

TEST(MultiRunTest, RenderContainsRowsAndUncertainty) {
  auto results = MultiSeedEvaluate(
      TinyConfig(), [] { return std::make_unique<rank::SvmRankRanker>(); },
      TwoMethods(), 2);
  const std::string out =
      RenderMultiRun(results, {"click@5", "div@5"}, "tiny");
  EXPECT_NE(out.find("Init"), std::string::npos);
  EXPECT_NE(out.find("MMR"), std::string::npos);
  EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(MultiRunTest, SingleSeedHasZeroStdDev) {
  auto results = MultiSeedEvaluate(
      TinyConfig(), [] { return std::make_unique<rank::SvmRankRanker>(); },
      TwoMethods(), 1);
  EXPECT_EQ(results[0].StdDev("click@5"), 0.0);
}

}  // namespace
}  // namespace rapid::eval
