// Property-style sweeps across seeds and configurations: invariants that
// must hold for every method, dataset kind, and click-model setting.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "metrics/metrics.h"
#include "rerank/dpp.h"
#include "rerank/mmr.h"
#include "rerank/neural_models.h"
#include "rerank/pdgan.h"
#include "rerank/ssd.h"

namespace rapid {
namespace {

// ---------- every method is a permutation, across seeds ----------

class PermutationSweep : public ::testing::TestWithParam<int> {};

TEST_P(PermutationSweep, AllMethodsPermuteRandomLists) {
  const int seed = GetParam();
  data::SimConfig cfg;
  cfg.kind = (seed % 3 == 0)   ? data::DatasetKind::kTaobao
             : (seed % 3 == 1) ? data::DatasetKind::kMovieLens
                               : data::DatasetKind::kAppStore;
  cfg.num_users = 15;
  cfg.num_items = 100;
  cfg.rerank_lists_per_user = 2;
  data::Dataset data = data::GenerateDataset(cfg, seed);
  click::GroundTruthClickModel dcm(&data, click::DcmConfig{});
  std::mt19937_64 rng(seed);
  std::vector<data::ImpressionList> train;
  for (const data::Request& req : data.rerank_train_requests) {
    data::ImpressionList list;
    list.user_id = req.user_id;
    list.items.assign(req.candidates.begin(), req.candidates.begin() + 9);
    for (int i = 0; i < 9; ++i) list.scores.push_back(1.0f - 0.1f * i);
    list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
    train.push_back(std::move(list));
  }

  std::vector<std::unique_ptr<rerank::Reranker>> methods;
  methods.push_back(std::make_unique<rerank::InitReranker>());
  methods.push_back(std::make_unique<rerank::MmrReranker>());
  methods.push_back(std::make_unique<rerank::AdpMmrReranker>());
  methods.push_back(std::make_unique<rerank::DppReranker>());
  methods.push_back(std::make_unique<rerank::SsdReranker>());
  methods.push_back(std::make_unique<rerank::PdGanReranker>());
  rerank::NeuralRerankConfig ncfg;
  ncfg.epochs = 1;
  ncfg.hidden_dim = 8;
  methods.push_back(std::make_unique<rerank::DlcmReranker>(ncfg));
  methods.push_back(std::make_unique<rerank::PrmReranker>(ncfg));
  core::RapidConfig rcfg;
  rcfg.train = ncfg;
  rcfg.hidden_dim = 8;
  methods.push_back(std::make_unique<core::RapidReranker>(rcfg));

  for (auto& method : methods) {
    method->Fit(data, train, seed);
    for (int l = 0; l < 4; ++l) {
      const auto out = method->Rerank(data, train[l]);
      std::multiset<int> sa(out.begin(), out.end()),
          sb(train[l].items.begin(), train[l].items.end());
      EXPECT_EQ(sa, sb) << method->name() << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationSweep,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

// ---------- DCM statistics across lambda ----------

class DcmLambdaSweep : public ::testing::TestWithParam<float> {};

TEST_P(DcmLambdaSweep, AttractionBoundsAndClickRates) {
  const float lambda = GetParam();
  data::SimConfig cfg;
  cfg.kind = data::DatasetKind::kTaobao;
  cfg.num_users = 25;
  cfg.num_items = 150;
  data::Dataset data = data::GenerateDataset(cfg, 301);
  click::DcmConfig dcm_cfg;
  dcm_cfg.lambda = lambda;
  click::GroundTruthClickModel dcm(&data, dcm_cfg);
  std::mt19937_64 rng(7);
  double total_clicks = 0.0;
  int lists = 0;
  for (int u = 0; u < 25; ++u) {
    std::vector<int> items;
    for (int i = 0; i < 10; ++i) items.push_back((u * 17 + i * 11) % 150);
    for (int pos = 0; pos < 10; ++pos) {
      const float a = dcm.Attraction(u, items, pos);
      ASSERT_GE(a, 0.0f);
      ASSERT_LE(a, 1.0f);
    }
    auto clicks = dcm.SimulateClicks(u, items, rng);
    for (int c : clicks) total_clicks += c;
    ++lists;
    // Analytic and satisfaction values bounded.
    const float s = dcm.TrueSatisfaction(u, items, 10);
    ASSERT_GE(s, 0.0f);
    ASSERT_LE(s, 1.0f);
  }
  // Clicks happen but are not saturated, at every lambda.
  EXPECT_GT(total_clicks / lists, 0.1);
  EXPECT_LT(total_clicks / lists, 9.0);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, DcmLambdaSweep,
                         ::testing::Values(0.0f, 0.3f, 0.5f, 0.9f, 1.0f));

// ---------- greedy-selection properties ----------

TEST(GreedyPropertyTest, MmrFirstPickIsTopScore) {
  // The first MMR pick always maximizes pure relevance (no similarity yet)
  // for any tradeoff > 0.
  data::SimConfig cfg;
  cfg.kind = data::DatasetKind::kMovieLens;
  cfg.num_users = 10;
  cfg.num_items = 80;
  data::Dataset data = data::GenerateDataset(cfg, 302);
  for (float trade : {0.2f, 0.5f, 0.9f}) {
    rerank::MmrReranker mmr(trade);
    data::ImpressionList list;
    list.user_id = 0;
    for (int i = 0; i < 8; ++i) {
      list.items.push_back(i * 9 % 80);
      list.scores.push_back(static_cast<float>((i * 37) % 11));
    }
    const auto out = mmr.Rerank(data, list);
    const auto norm = rerank::NormalizedScores(list);
    const int best = static_cast<int>(
        std::max_element(norm.begin(), norm.end()) - norm.begin());
    EXPECT_EQ(out[0], list.items[best]) << "trade=" << trade;
  }
}

TEST(GreedyPropertyTest, DppSelectionPrefixIsGreedyOptimal) {
  // For the greedy MAP order o, each o[t] must maximize the marginal gain
  // over the previously selected prefix (verified by recomputing log-det
  // gains directly on a small kernel).
  std::mt19937_64 rng(5);
  const int n = 6;
  // Random PSD kernel: L = B B^T + eps I.
  std::vector<std::vector<float>> b(n, std::vector<float>(n));
  std::normal_distribution<float> g(0.0f, 1.0f);
  for (auto& row : b) {
    for (float& x : row) x = g(rng);
  }
  std::vector<std::vector<float>> kernel(n, std::vector<float>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int k = 0; k < n; ++k) s += b[i][k] * b[j][k];
      kernel[i][j] = static_cast<float>(s) + (i == j ? 0.01f : 0.0f);
    }
  }
  const auto order = rerank::DppReranker::GreedyMapInference(kernel, 3);

  // Brute-force: determinant of the kernel submatrix for a given set.
  auto det = [&](std::vector<int> set) {
    const int m = static_cast<int>(set.size());
    std::vector<std::vector<double>> a(m, std::vector<double>(m));
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) a[i][j] = kernel[set[i]][set[j]];
    }
    double d = 1.0;
    for (int c = 0; c < m; ++c) {  // Gaussian elimination.
      int pivot = c;
      for (int r = c + 1; r < m; ++r) {
        if (std::fabs(a[r][c]) > std::fabs(a[pivot][c])) pivot = r;
      }
      if (std::fabs(a[pivot][c]) < 1e-12) return 0.0;
      if (pivot != c) {
        std::swap(a[pivot], a[c]);
        d = -d;
      }
      d *= a[c][c];
      for (int r = c + 1; r < m; ++r) {
        const double f = a[r][c] / a[c][c];
        for (int cc = c; cc < m; ++cc) a[r][cc] -= f * a[c][cc];
      }
    }
    return d;
  };

  std::vector<int> prefix;
  for (int t = 0; t < 3; ++t) {
    const double chosen_det = [&] {
      std::vector<int> s = prefix;
      s.push_back(order[t]);
      return det(s);
    }();
    for (int cand = 0; cand < n; ++cand) {
      if (std::find(prefix.begin(), prefix.end(), cand) != prefix.end()) {
        continue;
      }
      std::vector<int> s = prefix;
      s.push_back(cand);
      EXPECT_LE(det(s), chosen_det * (1.0 + 1e-4) + 1e-9)
          << "step " << t << " candidate " << cand;
    }
    prefix.push_back(order[t]);
  }
}

// ---------- metric relationships ----------

TEST(MetricPropertyTest, DivAtKBoundedByTopicCountAndK) {
  data::SimConfig cfg;
  cfg.kind = data::DatasetKind::kAppStore;
  cfg.num_users = 5;
  cfg.num_items = 60;
  data::Dataset data = data::GenerateDataset(cfg, 303);
  std::vector<int> items;
  for (int i = 0; i < 12; ++i) items.push_back(i * 5 % 60);
  for (int k = 1; k <= 12; ++k) {
    const float div = metrics::DivAtK(data, items, k);
    EXPECT_LE(div, static_cast<float>(std::min(k, data.num_topics)) + 1e-5f);
    EXPECT_GE(div, 0.99f);  // At least ~1 topic covered (one-hot items).
  }
}

TEST(MetricPropertyTest, SatisfactionMonotoneInK) {
  data::SimConfig cfg;
  cfg.kind = data::DatasetKind::kTaobao;
  cfg.num_users = 8;
  cfg.num_items = 60;
  data::Dataset data = data::GenerateDataset(cfg, 304);
  click::GroundTruthClickModel dcm(&data, click::DcmConfig{});
  std::vector<int> items = {0, 5, 10, 15, 20, 25};
  float prev = 0.0f;
  for (int k = 1; k <= 6; ++k) {
    const float s = dcm.TrueSatisfaction(0, items, k);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace rapid
