// Tests of the batched inference contract (rerank/neural_base.h): for
// every neural model family, `ScoreBatch` over randomized mixed-length
// lists must reproduce `ScoreList` bitwise — before and after a snapshot
// round trip — and `RerankBatch` must reproduce `Rerank`. Also covers the
// serving engine's batched worker path (determinism + batch metrics) and
// concurrent `ScoreBatch` on one shared model (run under
// RAPID_SANITIZE=thread for the data-race proof).

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "rerank/neural_models.h"
#include "rerank/seq2slate.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace rapid {
namespace {

class BatchScoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 20;
    cfg.num_items = 120;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 101);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(2);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
    // Mixed-length inference lists: prefixes of the training lists with
    // randomized lengths (including several sharing one length, so
    // ScoreBatch forms both singleton and multi-list groups).
    std::mt19937_64 len_rng(7);
    for (size_t i = 0; i < train_.size(); ++i) {
      data::ImpressionList list = train_[i];
      std::uniform_int_distribution<int> len(1,
                                             static_cast<int>(list.items.size()));
      const int keep = len(len_rng);
      list.items.resize(keep);
      list.scores.resize(keep);
      list.clicks.clear();
      mixed_.push_back(std::move(list));
    }
  }

  static rerank::NeuralRerankConfig SmallConfig() {
    rerank::NeuralRerankConfig cfg;
    cfg.epochs = 1;
    cfg.hidden_dim = 8;
    return cfg;
  }

  std::vector<const data::ImpressionList*> MixedPtrs() const {
    std::vector<const data::ImpressionList*> out;
    for (const data::ImpressionList& list : mixed_) out.push_back(&list);
    return out;
  }

  // The heart of the contract: batching is a pure throughput optimization,
  // never a numeric change.
  void ExpectBatchMatchesSingle(const rerank::NeuralReranker& model) {
    const std::vector<std::vector<float>> batched =
        model.ScoreBatch(data_, MixedPtrs());
    ASSERT_EQ(batched.size(), mixed_.size());
    for (size_t i = 0; i < mixed_.size(); ++i) {
      const std::vector<float> single = model.ScoreList(data_, mixed_[i]);
      ASSERT_EQ(batched[i].size(), single.size()) << model.name() << " list " << i;
      EXPECT_EQ(0, std::memcmp(batched[i].data(), single.data(),
                               single.size() * sizeof(float)))
          << model.name() << " list " << i << " scores diverge under batching";
    }
    const std::vector<std::vector<int>> reranked =
        model.RerankBatch(data_, MixedPtrs());
    for (size_t i = 0; i < mixed_.size(); ++i) {
      EXPECT_EQ(reranked[i], model.Rerank(data_, mixed_[i]))
          << model.name() << " list " << i;
    }
  }

  void FitAndCheck(rerank::NeuralReranker* model) {
    model->Fit(data_, train_, 6);
    ExpectBatchMatchesSingle(*model);
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
  std::vector<data::ImpressionList> mixed_;
};

TEST_F(BatchScoreTest, DlcmBatchedScoresAreBitExact) {
  rerank::DlcmReranker model(SmallConfig());
  FitAndCheck(&model);
}

TEST_F(BatchScoreTest, PrmBatchedScoresAreBitExact) {
  rerank::PrmReranker model(SmallConfig());
  FitAndCheck(&model);
}

TEST_F(BatchScoreTest, SetRankBatchedScoresAreBitExact) {
  rerank::SetRankReranker model(SmallConfig());
  FitAndCheck(&model);
}

TEST_F(BatchScoreTest, SrgaBatchedScoresAreBitExact) {
  rerank::SrgaReranker model(SmallConfig());
  FitAndCheck(&model);
}

TEST_F(BatchScoreTest, DesaBatchedScoresAreBitExact) {
  rerank::NeuralRerankConfig cfg = SmallConfig();
  cfg.loss = rerank::RerankLoss::kPairwiseLogistic;
  rerank::DesaReranker model(cfg);
  FitAndCheck(&model);
}

TEST_F(BatchScoreTest, Seq2SlateBatchedScoresAreBitExact) {
  rerank::Seq2SlateReranker model(SmallConfig());
  FitAndCheck(&model);
}

TEST_F(BatchScoreTest, RapidVariantsBatchedScoresAreBitExact) {
  // Every architecture knob that changes the forward pass: Bi-LSTM vs
  // transformer relevance, LSTM/mean/none diversity, both output heads.
  struct Variant {
    core::RelevanceEncoder enc;
    core::DiversityAggregator agg;
    core::OutputHead head;
  };
  const Variant variants[] = {
      {core::RelevanceEncoder::kBiLstm, core::DiversityAggregator::kLstm,
       core::OutputHead::kProbabilistic},
      {core::RelevanceEncoder::kBiLstm, core::DiversityAggregator::kLstm,
       core::OutputHead::kDeterministic},
      {core::RelevanceEncoder::kTransformer, core::DiversityAggregator::kLstm,
       core::OutputHead::kProbabilistic},
      {core::RelevanceEncoder::kBiLstm, core::DiversityAggregator::kMean,
       core::OutputHead::kProbabilistic},
      {core::RelevanceEncoder::kBiLstm, core::DiversityAggregator::kNone,
       core::OutputHead::kProbabilistic},
  };
  for (const Variant& v : variants) {
    core::RapidConfig cfg;
    cfg.train = SmallConfig();
    cfg.hidden_dim = 8;
    cfg.relevance_encoder = v.enc;
    cfg.diversity_aggregator = v.agg;
    cfg.head = v.head;
    core::RapidReranker model(cfg);
    FitAndCheck(&model);
  }
}

TEST_F(BatchScoreTest, BatchedExactnessSurvivesSnapshotRoundTrip) {
  // The serving path never scores the trained object — it scores what
  // `Snapshot::LoadAny` rehydrates. Exercise one RAPID and one baseline
  // family through the round trip.
  {
    core::RapidConfig cfg;
    cfg.train = SmallConfig();
    cfg.hidden_dim = 8;
    core::RapidReranker trained(cfg);
    trained.Fit(data_, train_, 6);
    const std::string path = ::testing::TempDir() + "/batch_rapid.rsnp";
    ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));
    const auto restored = serve::Snapshot::LoadAny(path, data_);
    ASSERT_NE(restored, nullptr);
    ExpectBatchMatchesSingle(*restored);
    // And the restored batch matches the trained single path: the full
    // train -> save -> load -> batch chain is one equivalence class.
    const auto batched = restored->ScoreBatch(data_, MixedPtrs());
    for (size_t i = 0; i < mixed_.size(); ++i) {
      EXPECT_EQ(batched[i], trained.ScoreList(data_, mixed_[i]));
    }
  }
  {
    rerank::PrmReranker trained(SmallConfig());
    trained.Fit(data_, train_, 6);
    const std::string path = ::testing::TempDir() + "/batch_prm.rsnp";
    ASSERT_TRUE(serve::Snapshot::Save(path, trained,
                                      serve::SnapshotFamily::kPrm, data_));
    const auto restored = serve::Snapshot::LoadAny(path, data_);
    ASSERT_NE(restored, nullptr);
    ExpectBatchMatchesSingle(*restored);
  }
}

TEST_F(BatchScoreTest, EmptyAndSingletonBatches) {
  core::RapidConfig cfg;
  cfg.train = SmallConfig();
  cfg.hidden_dim = 8;
  core::RapidReranker model(cfg);
  model.Fit(data_, train_, 6);

  EXPECT_TRUE(model.ScoreBatch(data_, {}).empty());
  const std::vector<std::vector<float>> one =
      model.ScoreBatch(data_, {&mixed_[0]});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], model.ScoreList(data_, mixed_[0]));

  // Empty lists inside a batch score to empty vectors without running a
  // forward, and don't disturb their neighbors.
  data::ImpressionList empty;
  empty.user_id = mixed_[0].user_id;
  const std::vector<std::vector<float>> with_empty =
      model.ScoreBatch(data_, {&mixed_[0], &empty, &mixed_[1]});
  ASSERT_EQ(with_empty.size(), 3u);
  EXPECT_EQ(with_empty[0], model.ScoreList(data_, mixed_[0]));
  EXPECT_TRUE(with_empty[1].empty());
  EXPECT_EQ(with_empty[2], model.ScoreList(data_, mixed_[1]));
}

TEST_F(BatchScoreTest, ConcurrentScoreBatchOnSharedModelIsSafe) {
  // The serving engine shares one fitted model across workers that now
  // call ScoreBatch concurrently. Under RAPID_SANITIZE=thread this is the
  // data-race proof for the batched const-inference surface.
  core::RapidConfig cfg;
  cfg.train = SmallConfig();
  cfg.hidden_dim = 8;
  core::RapidReranker model(cfg);
  model.Fit(data_, train_, 6);

  const std::vector<std::vector<float>> expected =
      model.ScoreBatch(data_, MixedPtrs());
  std::vector<std::thread> threads;
  std::vector<bool> ok(4, false);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      bool all_equal = true;
      for (int rep = 0; rep < 3; ++rep) {
        const auto got = model.ScoreBatch(data_, MixedPtrs());
        all_equal = all_equal && got == expected;
      }
      ok[t] = all_equal;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t << " saw diverging batched scores";
  }
}

TEST_F(BatchScoreTest, EngineBatchedPathIsDeterministicAndCounted) {
  core::RapidConfig cfg;
  cfg.train = SmallConfig();
  cfg.hidden_dim = 8;
  core::RapidReranker model(cfg);
  model.Fit(data_, train_, 6);

  serve::ServingConfig serving;
  serving.num_threads = 2;
  serving.max_batch = 4;
  serving.max_wait_us = 100;
  serving.deadline_us = 0;  // Deterministic: every request runs the model.
  serve::ServingEngine engine(data_, model, serving);

  std::vector<std::future<serve::RerankResponse>> futures;
  for (int rep = 0; rep < 5; ++rep) {
    for (const data::ImpressionList& list : mixed_) {
      futures.push_back(engine.Submit(list));
    }
  }
  size_t i = 0;
  for (auto& f : futures) {
    const serve::RerankResponse response = f.get();
    EXPECT_FALSE(response.degraded);
    EXPECT_EQ(response.items, model.Rerank(data_, mixed_[i % mixed_.size()]))
        << "batched serving diverged from the direct call";
    ++i;
  }
  engine.Shutdown();

  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.requests, futures.size());
  // Every model-bound request flowed through the batched path, so the
  // histogram and counters must reconcile exactly.
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batched_lists, futures.size());
  EXPECT_GE(stats.max_batch_size, 1);
  EXPECT_LE(stats.max_batch_size, serving.max_batch);
  uint64_t hist_batches = 0, hist_lists = 0;
  for (int bin = 0; bin < serve::ServingStats::kBatchHistBins; ++bin) {
    hist_batches += stats.batch_size_hist[bin];
    hist_lists += stats.batch_size_hist[bin] * static_cast<uint64_t>(bin + 1);
  }
  EXPECT_EQ(hist_batches, stats.batches);
  EXPECT_EQ(hist_lists, stats.batched_lists);
}

}  // namespace
}  // namespace rapid
