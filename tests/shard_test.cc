// Tests for the scale-out sharding tier: the consistent-hash ring's
// balance/remap/determinism properties, and the ShardRouter end to end
// over real in-process `net::Server` instances — fan-out and reply
// correlation, shard-down degradation and recovery, coordinated rollout
// with canary and rollback, and fleet-wide stats merging. Everything runs
// in one process (threads, not forks) so the whole file is a TSan target.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "net/server.h"
#include "serve/router.h"
#include "serve/snapshot.h"
#include "serve/stats_merge.h"
#include "shard/ring.h"
#include "shard/shard_router.h"

namespace rapid {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Consistent-hash ring properties.

std::vector<int> AssignUsers(const shard::HashRing& ring, int num_users) {
  std::vector<int> owner(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) owner[static_cast<size_t>(u)] = ring.ShardFor(u);
  return owner;
}

TEST(HashRingTest, EmptyAndSingleShard) {
  shard::HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.ShardFor(42), -1);
  EXPECT_FALSE(ring.RemoveShard(0));

  ring.AddShard(7);
  EXPECT_EQ(ring.num_points(), static_cast<size_t>(ring.config().virtual_nodes));
  for (int u = 0; u < 100; ++u) EXPECT_EQ(ring.ShardFor(u), 7);
  // Re-adding is a no-op, not a duplicate set of points.
  ring.AddShard(7);
  EXPECT_EQ(ring.num_points(), static_cast<size_t>(ring.config().virtual_nodes));
}

TEST(HashRingTest, LoadSplitsRoughlyEvenly) {
  constexpr int kShards = 8;
  constexpr int kUsers = 100'000;
  shard::HashRing ring;
  for (int s = 0; s < kShards; ++s) ring.AddShard(s);

  std::vector<int> counts(kShards, 0);
  for (int u = 0; u < kUsers; ++u) {
    const int s = ring.ShardFor(u);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, kShards);
    ++counts[static_cast<size_t>(s)];
  }
  // With 128 virtual nodes the arc-length spread is ~1/sqrt(128) = 9%
  // relative; 0.6x..1.5x of fair share is a loose, stable bound.
  const double fair = static_cast<double>(kUsers) / kShards;
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[static_cast<size_t>(s)], 0.6 * fair) << "shard " << s;
    EXPECT_LT(counts[static_cast<size_t>(s)], 1.5 * fair) << "shard " << s;
  }
}

TEST(HashRingTest, RemovingAShardOnlyRemapsItsOwnKeys) {
  constexpr int kShards = 8;
  constexpr int kUsers = 50'000;
  constexpr int kVictim = 3;
  shard::HashRing ring;
  for (int s = 0; s < kShards; ++s) ring.AddShard(s);
  const std::vector<int> before = AssignUsers(ring, kUsers);

  ASSERT_TRUE(ring.RemoveShard(kVictim));
  const std::vector<int> after = AssignUsers(ring, kUsers);

  int remapped = 0;
  for (int u = 0; u < kUsers; ++u) {
    if (before[static_cast<size_t>(u)] == kVictim) {
      // The victim's keys must land somewhere live.
      EXPECT_NE(after[static_cast<size_t>(u)], kVictim);
      ++remapped;
    } else {
      // The defining consistent-hashing property: keys owned by surviving
      // shards do not move at all.
      EXPECT_EQ(after[static_cast<size_t>(u)], before[static_cast<size_t>(u)])
          << "user " << u << " moved although its shard survived";
    }
  }
  // The victim owned about 1/N of the keyspace.
  EXPECT_LT(remapped, 2 * kUsers / kShards);
  EXPECT_GT(remapped, kUsers / (2 * kShards));
}

TEST(HashRingTest, AddingAShardStealsAboutOneNth) {
  constexpr int kShards = 8;
  constexpr int kUsers = 50'000;
  shard::HashRing ring;
  for (int s = 0; s < kShards; ++s) ring.AddShard(s);
  const std::vector<int> before = AssignUsers(ring, kUsers);

  ring.AddShard(kShards);  // Grow the fleet by one.
  const std::vector<int> after = AssignUsers(ring, kUsers);

  int moved = 0;
  for (int u = 0; u < kUsers; ++u) {
    if (after[static_cast<size_t>(u)] != before[static_cast<size_t>(u)]) {
      // Every moved key moved *to* the new shard, never between old ones.
      EXPECT_EQ(after[static_cast<size_t>(u)], kShards);
      ++moved;
    }
  }
  // The newcomer takes about 1/(N+1) of the keyspace.
  EXPECT_LT(moved, 2 * kUsers / (kShards + 1));
  EXPECT_GT(moved, kUsers / (2 * (kShards + 1)));
}

TEST(HashRingTest, DeterministicUnderSeedAndMembershipOrder) {
  shard::RingConfig cfg;
  cfg.seed = 1234;
  shard::HashRing a(cfg), b(cfg);
  for (int s = 0; s < 5; ++s) a.AddShard(s);
  for (int s = 4; s >= 0; --s) b.AddShard(s);  // Reverse insertion order.
  for (int u = 0; u < 10'000; ++u) {
    ASSERT_EQ(a.ShardFor(u), b.ShardFor(u))
        << "placement depended on insertion order";
  }

  shard::RingConfig other = cfg;
  other.seed = 5678;
  shard::HashRing c(other);
  for (int s = 0; s < 5; ++s) c.AddShard(s);
  int differs = 0;
  for (int u = 0; u < 10'000; ++u) {
    if (a.ShardFor(u) != c.ShardFor(u)) ++differs;
  }
  // A different seed is a different ring: most keys land elsewhere
  // (4/5 expected for 5 shards).
  EXPECT_GT(differs, 5'000);
}

// ---------------------------------------------------------------------------
// ShardRouter over real in-process servers.

/// Deterministic stand-in model (mirrors net_server_test): rotates the
/// list left by `shift` so each shard's answers are recognizable.
class RotateReranker : public rerank::Reranker {
 public:
  explicit RotateReranker(int shift) : shift_(shift) {}

  std::string name() const override {
    return "rotate-" + std::to_string(shift_);
  }

  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    std::vector<int> out = list.items;
    if (!out.empty()) {
      std::rotate(out.begin(),
                  out.begin() + (shift_ % static_cast<int>(out.size())),
                  out.end());
    }
    return out;
  }

 private:
  const int shift_;
};

data::ImpressionList TenItemList(int user_id) {
  data::ImpressionList list;
  list.user_id = user_id;
  for (int i = 0; i < 10; ++i) {
    list.items.push_back(i);
    list.scores.push_back(1.0f - 0.05f * i);
  }
  return list;
}

std::vector<int> Rotated(const std::vector<int>& items, int shift) {
  std::vector<int> out = items;
  std::rotate(out.begin(), out.begin() + shift, out.end());
  return out;
}

net::WireRequest MakeRequest(const std::string& slot, int user_id) {
  net::WireRequest request;
  request.slot = slot;
  request.lane = serve::Lane::kHigh;
  request.list = TenItemList(user_id);
  return request;
}

template <typename Pred>
bool EventuallyTrue(Pred pred, std::chrono::milliseconds budget = 3s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

/// A tiny in-process fleet: N servers, each over its own ServingRouter,
/// each slot "main" answering with a shard-identifying rotation.
class ShardFleet {
 public:
  explicit ShardFleet(int num_shards, net::ServerConfig server_cfg = {}) {
    for (int s = 0; s < num_shards; ++s) {
      routers_.push_back(std::make_unique<serve::ServingRouter>(
          data_, serve::RouterConfig{}));
      routers_.back()->InstallSlot(
          "main", std::make_shared<RotateReranker>(s + 1));
      servers_.push_back(
          std::make_unique<net::Server>(*routers_.back(), server_cfg));
      EXPECT_TRUE(servers_.back()->Start());
      endpoints_.push_back({"127.0.0.1", servers_.back()->port()});
    }
  }

  std::vector<shard::ShardEndpoint> endpoints() const { return endpoints_; }
  net::Server& server(int s) { return *servers_[static_cast<size_t>(s)]; }
  serve::ServingRouter& router(int s) {
    return *routers_[static_cast<size_t>(s)];
  }

  /// Stops shard `s`'s server; `Restart` brings a fresh one up on the
  /// *same* port (SO_REUSEADDR) with `cfg`, like a process bounce.
  void Stop(int s) { servers_[static_cast<size_t>(s)]->Stop(); }
  bool Restart(int s, net::ServerConfig cfg = {}) {
    cfg.port = endpoints_[static_cast<size_t>(s)].port;
    servers_[static_cast<size_t>(s)] =
        std::make_unique<net::Server>(*routers_[static_cast<size_t>(s)], cfg);
    return servers_[static_cast<size_t>(s)]->Start();
  }

 private:
  data::Dataset data_;
  std::vector<std::unique_ptr<serve::ServingRouter>> routers_;
  std::vector<std::unique_ptr<net::Server>> servers_;
  std::vector<shard::ShardEndpoint> endpoints_;
};

shard::ShardRouterConfig FastConfig() {
  shard::ShardRouterConfig cfg;
  cfg.request_timeout_ms = 3000;
  cfg.backoff_initial_ms = 5;
  cfg.backoff_max_ms = 50;
  cfg.poll_slice_ms = 10;
  cfg.admin_timeout_ms = 5000;
  return cfg;
}

TEST(ShardRouterTest, FanOutRoutesByRingAndCorrelatesReplies) {
  ShardFleet fleet(2);
  shard::ShardRouter router(fleet.endpoints(), FastConfig());
  ASSERT_TRUE(router.Start());
  ASSERT_TRUE(router.ShardHealthy(0));
  ASSERT_TRUE(router.ShardHealthy(1));

  // Pipeline the whole batch before reading any reply: correlation has to
  // work with many requests in flight per shard.
  constexpr int kUsers = 64;
  std::vector<std::future<shard::ShardReply>> futures;
  futures.reserve(kUsers);
  for (int u = 0; u < kUsers; ++u) {
    futures.push_back(router.Submit(MakeRequest("main", u)));
  }

  int per_shard[2] = {0, 0};
  for (int u = 0; u < kUsers; ++u) {
    shard::ShardReply reply = futures[static_cast<size_t>(u)].get();
    ASSERT_TRUE(reply.ok) << "user " << u << ": " << reply.error;
    const int expect_shard = router.ShardFor(u);
    EXPECT_EQ(reply.shard, expect_shard);
    // The answer proves which shard served it: shard s rotates by s+1.
    EXPECT_EQ(reply.response.items,
              Rotated(TenItemList(u).items, expect_shard + 1))
        << "user " << u << " was served by the wrong shard";
    ++per_shard[expect_shard];
  }
  // The ring actually spread the users (not all on one shard).
  EXPECT_GT(per_shard[0], 0);
  EXPECT_GT(per_shard[1], 0);

  // Fleet stats: both shards scraped, requests sum across the fleet.
  shard::FleetStats stats = router.Stats();
  EXPECT_EQ(stats.shards_up, 2);
  EXPECT_EQ(stats.merged.total.requests, static_cast<uint64_t>(kUsers));
  EXPECT_EQ(stats.shards[0].ok + stats.shards[1].ok,
            static_cast<uint64_t>(kUsers));
  ASSERT_EQ(stats.merged.slots.size(), 1u);
  EXPECT_EQ(stats.merged.slots[0].slot, "main");
  EXPECT_EQ(stats.merged.slots[0].stats.requests,
            static_cast<uint64_t>(kUsers));
  // The fleet readout renders end to end.
  EXPECT_NE(stats.ToTable().find("shards up"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"shards_up\":2"), std::string::npos);
}

TEST(ShardRouterTest, ErrorFramesSurfaceInsteadOfHanging) {
  ShardFleet fleet(2);
  shard::ShardRouter router(fleet.endpoints(), FastConfig());
  ASSERT_TRUE(router.Start());

  // An oversized list violates the server's codec limits, so the server
  // answers with an error frame; the future must resolve with it.
  net::WireRequest bad = MakeRequest("main", 0);
  bad.list.items.assign(100'000, 1);
  bad.list.scores.assign(100'000, 1.0f);
  shard::ShardReply reply = router.Call(std::move(bad));
  EXPECT_FALSE(reply.ok);
  EXPECT_FALSE(reply.error.empty());
}

TEST(ShardRouterTest, DownShardFastFailsOthersKeepServingThenRecovers) {
  ShardFleet fleet(2);
  shard::ShardRouter router(fleet.endpoints(), FastConfig());
  ASSERT_TRUE(router.Start());

  // Pick one user per shard so both paths are exercised by name.
  int user_on[2] = {-1, -1};
  for (int u = 0; user_on[0] < 0 || user_on[1] < 0; ++u) {
    const int s = router.ShardFor(u);
    if (user_on[s] < 0) user_on[s] = u;
  }

  fleet.Stop(1);
  // The receiver notices the dead connection (EOF) and marks the shard
  // down; until then a request may fail via "connection lost" instead of
  // the fast path — both are ok=false, never a hang.
  ASSERT_TRUE(EventuallyTrue([&] { return !router.ShardHealthy(1); }));

  shard::ShardReply down = router.Call(MakeRequest("main", user_on[1]));
  EXPECT_FALSE(down.ok);
  EXPECT_EQ(down.shard, 1);
  EXPECT_FALSE(down.error.empty());

  // The healthy shard is completely unaffected.
  shard::ShardReply up = router.Call(MakeRequest("main", user_on[0]));
  ASSERT_TRUE(up.ok) << up.error;
  EXPECT_EQ(up.response.items, Rotated(TenItemList(user_on[0]).items, 1));

  // Bounce the shard: the receiver's backoff redial finds the new server
  // on the same port and traffic resumes with no router restart.
  ASSERT_TRUE(fleet.Restart(1));
  ASSERT_TRUE(EventuallyTrue([&] { return router.ShardHealthy(1); }));
  shard::ShardReply back = router.Call(MakeRequest("main", user_on[1]));
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.response.items, Rotated(TenItemList(user_on[1]).items, 2));

  const shard::FleetStats stats = router.Stats();
  EXPECT_GE(stats.shards[1].failed, 1u);
  EXPECT_GE(stats.shards[1].reconnects, 1u);
  EXPECT_TRUE(stats.shards[1].healthy);
}

// ---------------------------------------------------------------------------
// Coordinated rollout over real snapshots.

class ShardRolloutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 15;
    cfg.num_items = 100;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 77);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(3);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
    path_a_ = TrainAndSnapshot(8, 1, "shard_roll_a.rsnp");
    path_b_ = TrainAndSnapshot(12, 2, "shard_roll_b.rsnp");
  }

  std::string TrainAndSnapshot(int hidden, uint64_t seed,
                               const std::string& file) {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = hidden;
    core::RapidReranker model(cfg);
    model.Fit(data_, train_, seed);
    const std::string path = ::testing::TempDir() + "/" + file;
    EXPECT_TRUE(serve::Snapshot::Save(path, model, data_));
    return path;
  }

  /// N servers over the fixture dataset with remote load enabled (or not,
  /// per shard) and no slot installed yet — rollouts do the installing.
  struct Fleet {
    std::vector<std::unique_ptr<serve::ServingRouter>> routers;
    std::vector<std::unique_ptr<net::Server>> servers;
    std::vector<shard::ShardEndpoint> endpoints;
  };
  Fleet MakeFleet(const std::vector<bool>& remote_load_enabled) {
    Fleet fleet;
    for (bool enabled : remote_load_enabled) {
      fleet.routers.push_back(std::make_unique<serve::ServingRouter>(
          data_, serve::RouterConfig{}));
      net::ServerConfig cfg;
      cfg.enable_remote_load = enabled;
      fleet.servers.push_back(
          std::make_unique<net::Server>(*fleet.routers.back(), cfg));
      EXPECT_TRUE(fleet.servers.back()->Start());
      fleet.endpoints.push_back({"127.0.0.1", fleet.servers.back()->port()});
    }
    return fleet;
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
  std::string path_a_;
  std::string path_b_;
};

TEST_F(ShardRolloutTest, CanaryFirstThenFleetWideCommit) {
  Fleet fleet = MakeFleet({true, true});
  shard::ShardRouter router(fleet.endpoints, FastConfig());
  ASSERT_TRUE(router.Start());

  shard::RolloutResult result = router.Rollout("main", path_a_);
  ASSERT_EQ(result.status, shard::RolloutStatus::kCommitted) << result.detail;
  EXPECT_EQ(result.canary_shard, 0);
  ASSERT_EQ(result.versions.size(), 2u);
  EXPECT_EQ(result.versions[0], 1u);
  EXPECT_EQ(result.versions[1], 1u);
  // Both routers really serve the snapshot (checked in-process).
  EXPECT_EQ(fleet.routers[0]->stats().slots.size(), 1u);
  EXPECT_EQ(fleet.routers[1]->stats().slots.size(), 1u);

  // A second rollout advances every shard's version.
  result = router.Rollout("main", path_b_);
  ASSERT_EQ(result.status, shard::RolloutStatus::kCommitted) << result.detail;
  EXPECT_EQ(result.versions[0], 2u);
  EXPECT_EQ(result.versions[1], 2u);
}

TEST_F(ShardRolloutTest, CanaryRejectionLeavesFleetUntouched) {
  Fleet fleet = MakeFleet({true, true});
  shard::ShardRouter router(fleet.endpoints, FastConfig());
  ASSERT_TRUE(router.Start());
  ASSERT_EQ(router.Rollout("main", path_a_).status,
            shard::RolloutStatus::kCommitted);

  // A path that does not exist fails the canary's LoadSlot; the follower
  // must never even be asked.
  const shard::RolloutResult result =
      router.Rollout("main", path_a_ + ".does-not-exist");
  EXPECT_EQ(result.status, shard::RolloutStatus::kCanaryRejected);
  EXPECT_EQ(result.canary_shard, 0);
  EXPECT_EQ(result.versions[0], 0u);
  EXPECT_EQ(result.versions[1], 0u);
  // Both shards still serve version 1 of snapshot A.
  for (int s = 0; s < 2; ++s) {
    const serve::RouterStats stats = fleet.routers[static_cast<size_t>(s)]->stats();
    ASSERT_EQ(stats.slots.size(), 1u);
    EXPECT_EQ(stats.slots[0].version, 1u) << "shard " << s;
  }
}

TEST_F(ShardRolloutTest, FollowerRefusalRollsTheCanaryBack) {
  // Both shards accept the first rollout; then shard 1 is bounced into a
  // config that refuses remote loads, so the next rollout publishes on the
  // canary, fails on the follower, and must roll the canary back.
  Fleet fleet = MakeFleet({true, true});
  shard::ShardRouter router(fleet.endpoints, FastConfig());
  ASSERT_TRUE(router.Start());
  ASSERT_EQ(router.Rollout("main", path_a_).status,
            shard::RolloutStatus::kCommitted);

  fleet.servers[1]->Stop();
  net::ServerConfig refusing;
  refusing.enable_remote_load = false;
  refusing.port = fleet.endpoints[1].port;
  fleet.servers[1] =
      std::make_unique<net::Server>(*fleet.routers[1], refusing);
  ASSERT_TRUE(fleet.servers[1]->Start());

  const shard::RolloutResult result = router.Rollout("main", path_b_);
  ASSERT_EQ(result.status, shard::RolloutStatus::kRolledBack) << result.detail;
  EXPECT_EQ(result.versions[0], 0u);  // Rolled back, not serving B.
  EXPECT_EQ(result.versions[1], 0u);  // Never accepted B.
  EXPECT_NE(result.detail.find("rolled back"), std::string::npos);

  // The canary is back on snapshot A — as a *new* version (LoadSlot
  // re-publish), so its model is A's while the follower never moved.
  const serve::RouterStats canary = fleet.routers[0]->stats();
  ASSERT_EQ(canary.slots.size(), 1u);
  EXPECT_EQ(canary.slots[0].version, 3u);  // A=1, B=2, A-again=3.
  const serve::RouterStats follower = fleet.routers[1]->stats();
  ASSERT_EQ(follower.slots.size(), 1u);
  EXPECT_EQ(follower.slots[0].version, 1u);
}

TEST_F(ShardRolloutTest, NoPreviousCommitMeansRollbackFailedIsReported) {
  // Shard 1 refuses remote loads from the start: the very first rollout
  // publishes on the canary, fails on the follower, and has nothing to
  // roll back to — the honest answer is kRollbackFailed, fleet mixed.
  Fleet fleet = MakeFleet({true, false});
  shard::ShardRouter router(fleet.endpoints, FastConfig());
  ASSERT_TRUE(router.Start());

  const shard::RolloutResult result = router.Rollout("main", path_a_);
  EXPECT_EQ(result.status, shard::RolloutStatus::kRollbackFailed);
  EXPECT_NE(result.detail.find("no previous committed snapshot"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Stats merge unit coverage (pure, no sockets).

TEST(StatsMergeTest, CountersSumMaximaMaxPercentilesWeight) {
  serve::RouterStats a, b;
  a.total.requests = 100;
  a.total.p99_us = 1000.0;
  a.total.max_us = 5000;
  a.total.shed = 3;
  b.total.requests = 300;
  b.total.p99_us = 2000.0;
  b.total.max_us = 4000;
  b.total.shed = 7;
  a.unknown_slot = 2;
  b.unknown_slot = 5;
  a.quota_shed = 1;
  b.quota_shed = 4;
  a.cache.hits = 10;
  b.cache.hits = 20;
  a.cache.negative_hits = 1;
  b.cache.negative_hits = 2;

  serve::RouterStats::SlotEntry slot_a;
  slot_a.slot = "main";
  slot_a.model_name = "old";
  slot_a.version = 1;
  slot_a.stats.requests = 100;
  a.slots.push_back(slot_a);
  serve::RouterStats::SlotEntry slot_b = slot_a;
  slot_b.model_name = "new";
  slot_b.version = 2;  // Mid-rollout skew: the merged entry keeps v2.
  slot_b.stats.requests = 300;
  b.slots.push_back(slot_b);
  serve::RouterStats::SlotEntry only_b;
  only_b.slot = "beta";
  only_b.version = 1;
  b.slots.push_back(only_b);

  serve::RouterStats merged;
  serve::MergeInto(&merged, a);
  serve::MergeInto(&merged, b);

  EXPECT_EQ(merged.total.requests, 400u);
  // Request-weighted: (100*1000 + 300*2000) / 400 = 1750.
  EXPECT_NEAR(merged.total.p99_us, 1750.0, 1e-9);
  EXPECT_EQ(merged.total.max_us, 5000u);
  EXPECT_EQ(merged.total.shed, 10u);
  EXPECT_EQ(merged.unknown_slot, 7u);
  EXPECT_EQ(merged.quota_shed, 5u);
  EXPECT_EQ(merged.cache.hits, 30u);
  EXPECT_EQ(merged.cache.negative_hits, 3u);

  ASSERT_EQ(merged.slots.size(), 2u);  // "beta" < "main", sorted.
  EXPECT_EQ(merged.slots[0].slot, "beta");
  EXPECT_EQ(merged.slots[1].slot, "main");
  EXPECT_EQ(merged.slots[1].version, 2u);
  EXPECT_EQ(merged.slots[1].model_name, "new");
  EXPECT_EQ(merged.slots[1].stats.requests, 400u);
}

TEST(StatsMergeTest, HistogramsSumAndPercentilesAreExactNotWeighted) {
  // Shard A: 90 fast requests (~100us). Shard B: 10 slow ones (~5ms).
  // The fleet p99 lives in B's bucket; a request-weighted average of the
  // per-shard p99 points would land nowhere near it.
  const int fast_bin = serve::ServingStats::LatencyBucketIndex(100);
  const int slow_bin = serve::ServingStats::LatencyBucketIndex(5000);
  ASSERT_NE(fast_bin, slow_bin);

  serve::ServingStats a, b;
  a.requests = 90;
  a.latency_hist[fast_bin] = 90;
  a.p50_us = a.p95_us = a.p99_us = 111.0;  // Stale points, must be ignored.
  b.requests = 10;
  b.latency_hist[slow_bin] = 10;
  b.p50_us = b.p95_us = b.p99_us = 5555.0;

  serve::ServingStats merged;
  serve::MergeInto(&merged, a);
  serve::MergeInto(&merged, b);

  EXPECT_EQ(merged.requests, 100u);
  EXPECT_EQ(merged.latency_hist[fast_bin], 90u);
  EXPECT_EQ(merged.latency_hist[slow_bin], 10u);
  // Rank 49 of 100 sits in the fast bucket; ranks 94 and 99 in the slow
  // one. Exact recompute returns bucket lower bounds, not 111/5555 blends.
  const double fast_us = serve::ServingStats::LatencyBucketValue(fast_bin);
  const double slow_us = serve::ServingStats::LatencyBucketValue(slow_bin);
  EXPECT_DOUBLE_EQ(merged.p50_us, fast_us);
  EXPECT_DOUBLE_EQ(merged.p95_us, slow_us);
  EXPECT_DOUBLE_EQ(merged.p99_us, slow_us);
  // The weighted average of the stale points (0.9*111 + 0.1*5555 = 655.4)
  // must NOT survive anywhere.
  EXPECT_GT(merged.p99_us, 1000.0);
}

TEST(StatsMergeTest, OnlineCountersSumVersionsMaxAndPresencePropagates) {
  serve::RouterStats a, b, c;
  a.has_online = true;
  a.online.feedback_appended = 10;
  a.online.feedback_dropped = 1;
  a.online.feedback_drained = 9;
  a.online.train_rounds = 3;
  a.online.trained_lists = 9;
  a.online.publishes = 2;
  a.online.publish_rejected = 1;
  a.online.publish_skipped = 0;
  a.online.last_published_version = 7;
  b.has_online = true;
  b.online.feedback_appended = 5;
  b.online.publish_skipped = 2;
  b.online.last_published_version = 4;
  // c has no online loop; merging it must not clear the flag.

  serve::RouterStats merged;
  serve::MergeInto(&merged, a);
  serve::MergeInto(&merged, b);
  serve::MergeInto(&merged, c);

  EXPECT_TRUE(merged.has_online);
  EXPECT_EQ(merged.online.feedback_appended, 15u);
  EXPECT_EQ(merged.online.feedback_dropped, 1u);
  EXPECT_EQ(merged.online.feedback_drained, 9u);
  EXPECT_EQ(merged.online.train_rounds, 3u);
  EXPECT_EQ(merged.online.trained_lists, 9u);
  EXPECT_EQ(merged.online.publishes, 2u);
  EXPECT_EQ(merged.online.publish_rejected, 1u);
  EXPECT_EQ(merged.online.publish_skipped, 2u);
  EXPECT_EQ(merged.online.last_published_version, 7u);

  serve::RouterStats none;
  serve::MergeInto(&none, c);
  EXPECT_FALSE(none.has_online);
}

TEST(StatsMergeTest, EmptyFleetMergeStaysZeroWithoutNaN) {
  // A coordinator scraping zero shards (or shards that served nothing)
  // must render a well-formed all-zero view: the weighted-percentile
  // fallback divides by total requests, and an empty merge must not turn
  // that into NaN or garbage.
  serve::RouterStats merged;
  serve::MergeInto(&merged, serve::RouterStats{});
  serve::MergeInto(&merged, serve::RouterStats{});

  EXPECT_EQ(merged.total.requests, 0u);
  EXPECT_EQ(merged.total.p50_us, 0.0);
  EXPECT_EQ(merged.total.p95_us, 0.0);
  EXPECT_EQ(merged.total.p99_us, 0.0);
  EXPECT_EQ(merged.total.mean_us, 0.0);
  EXPECT_EQ(merged.total.max_us, 0u);
  EXPECT_FALSE(merged.total.HasLatencyHist());
  EXPECT_TRUE(merged.slots.empty());
  EXPECT_FALSE(merged.has_net);
  EXPECT_FALSE(merged.has_online);
  // The empty view still renders through both formatters.
  EXPECT_FALSE(merged.ToTable().empty());
  EXPECT_NE(merged.ToJson().find("\"total\""), std::string::npos);
}

TEST(StatsMergeTest, AllHistogramLessPeersUseExactWeightedFallback) {
  // Peers that predate histogram transport report percentile points with
  // all-zero histograms; the merge must fall back to the request-weighted
  // average — and that fallback math must be exact, for every percentile
  // and for the mean.
  serve::ServingStats a, b;
  a.requests = 100;
  a.p50_us = 100.0;
  a.p95_us = 200.0;
  a.p99_us = 300.0;
  a.mean_us = 120.0;
  b.requests = 300;
  b.p50_us = 200.0;
  b.p95_us = 400.0;
  b.p99_us = 700.0;
  b.mean_us = 240.0;

  serve::ServingStats merged;
  serve::MergeInto(&merged, a);
  serve::MergeInto(&merged, b);

  EXPECT_EQ(merged.requests, 400u);
  EXPECT_FALSE(merged.HasLatencyHist());
  EXPECT_NEAR(merged.p50_us, (100.0 * 100 + 200.0 * 300) / 400, 1e-9);
  EXPECT_NEAR(merged.p95_us, (200.0 * 100 + 400.0 * 300) / 400, 1e-9);
  EXPECT_NEAR(merged.p99_us, (300.0 * 100 + 700.0 * 300) / 400, 1e-9);
  EXPECT_NEAR(merged.mean_us, (120.0 * 100 + 240.0 * 300) / 400, 1e-9);

  // Merging a zero-request peer into the fallback view changes nothing.
  serve::MergeInto(&merged, serve::ServingStats{});
  EXPECT_NEAR(merged.p99_us, (300.0 * 100 + 700.0 * 300) / 400, 1e-9);
}

TEST(StatsMergeTest, MixedHistogramAndHistogramLessPeersPinTheRecompute) {
  // One modern peer (with a histogram) plus one legacy peer (points
  // only): the documented behavior is that any histogram sample wins —
  // percentiles recompute from the merged histogram and the legacy
  // percentile points are ignored, while request counts and mean still
  // include the legacy side. Pinned so a refactor that silently blends
  // the two regimes fails loudly.
  const int bin = serve::ServingStats::LatencyBucketIndex(800);
  serve::ServingStats modern, legacy;
  modern.requests = 50;
  modern.latency_hist[bin] = 50;
  modern.mean_us = 800.0;
  legacy.requests = 150;
  legacy.p50_us = legacy.p95_us = legacy.p99_us = 9999.0;
  legacy.mean_us = 100.0;

  // Either merge order lands in the same regime: the histogram survives.
  const double bucket_us = serve::ServingStats::LatencyBucketValue(bin);
  {
    serve::ServingStats merged = modern;
    serve::MergeInto(&merged, legacy);
    EXPECT_EQ(merged.requests, 200u);
    EXPECT_TRUE(merged.HasLatencyHist());
    EXPECT_DOUBLE_EQ(merged.p50_us, bucket_us);
    EXPECT_DOUBLE_EQ(merged.p99_us, bucket_us);
    EXPECT_NEAR(merged.mean_us, (800.0 * 50 + 100.0 * 150) / 200, 1e-9);
  }
  {
    serve::ServingStats merged = legacy;
    serve::MergeInto(&merged, modern);
    EXPECT_EQ(merged.requests, 200u);
    EXPECT_TRUE(merged.HasLatencyHist());
    EXPECT_DOUBLE_EQ(merged.p50_us, bucket_us);
    EXPECT_DOUBLE_EQ(merged.p99_us, bucket_us);
    EXPECT_NEAR(merged.mean_us, (100.0 * 150 + 800.0 * 50) / 200, 1e-9);
  }
}

}  // namespace
}  // namespace rapid
