// End-to-end integration tests: a miniature version of the paper's
// experiment pipeline, asserting the *orderings* the reproduction targets
// (see DESIGN.md section 4). Uses analytic expected clicks where possible
// to keep assertions stable.

#include <gtest/gtest.h>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "metrics/metrics.h"
#include "rankers/din.h"
#include "rerank/dpp.h"
#include "rerank/mmr.h"
#include "rerank/neural_models.h"

namespace rapid {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static eval::Environment* env_;

  // One shared environment for the whole suite (building it trains DIN).
  static void SetUpTestSuite() {
    eval::PipelineConfig cfg;
    cfg.sim.kind = data::DatasetKind::kTaobao;
    cfg.sim.num_users = 80;
    cfg.sim.num_items = 500;
    cfg.sim.rerank_lists_per_user = 6;
    cfg.sim.test_lists_per_user = 3;
    cfg.sim.ranker_train_pos_per_user = 6;
    cfg.sim.candidates_per_request = 50;
    cfg.sim.candidate_relevant_frac = 0.25f;
    cfg.dcm.lambda = 0.6f;
    cfg.seed = 3;
    rank::DinConfig din_cfg;
    din_cfg.epochs = 1;
    env_ = new eval::Environment(cfg,
                                 std::make_unique<rank::DinRanker>(din_cfg));
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  // Mean analytic expected clicks@10 of a re-ranker over the test lists —
  // no click-sampling noise at all.
  static double MeanExpectedClicks(const rerank::Reranker& method) {
    double total = 0.0;
    for (const auto& list : env_->test_lists()) {
      const auto order = method.Rerank(env_->dataset(), list);
      total += env_->dcm().ExpectedClicks(list.user_id, order, 10);
    }
    return total / env_->test_lists().size();
  }

  static double MeanDiv(const rerank::Reranker& method, int k) {
    double total = 0.0;
    for (const auto& list : env_->test_lists()) {
      const auto order = method.Rerank(env_->dataset(), list);
      total += metrics::DivAtK(env_->dataset(), order, k);
    }
    return total / env_->test_lists().size();
  }
};

eval::Environment* IntegrationTest::env_ = nullptr;

TEST_F(IntegrationTest, TrainedRerankerBeatsInitialRanking) {
  rerank::InitReranker init;
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 8;
  rerank::PrmReranker prm(cfg);
  prm.Fit(env_->dataset(), env_->train_lists(), 5);
  EXPECT_GT(MeanExpectedClicks(prm), MeanExpectedClicks(init))
      << "a trained listwise re-ranker must improve the initial ranking";
}

TEST_F(IntegrationTest, RapidBeatsInitialRanking) {
  rerank::InitReranker init;
  core::RapidConfig cfg;
  cfg.train.epochs = 8;
  core::RapidReranker rapid(cfg);
  rapid.Fit(env_->dataset(), env_->train_lists(), 5);
  EXPECT_GT(MeanExpectedClicks(rapid), MeanExpectedClicks(init));
}

TEST_F(IntegrationTest, DppTradesUtilityForDiversity) {
  rerank::InitReranker init;
  rerank::DppReranker dpp;
  // DPP must visibly increase topic coverage...
  EXPECT_GT(MeanDiv(dpp, 5), MeanDiv(init, 5) + 0.05);
  // ...without increasing expected clicks by much (the paper's tradeoff:
  // DPP's utility is at best marginally above Init and typically below
  // the trained re-rankers; allow slack for simulator noise).
  EXPECT_LT(MeanExpectedClicks(dpp), MeanExpectedClicks(init) + 0.15);
}

TEST_F(IntegrationTest, SampledClicksMatchAnalyticExpectation) {
  rerank::InitReranker init;
  eval::MethodMetrics m =
      eval::EvaluateReranker(*env_, init, {10}, 777, /*realizations=*/16);
  const double sampled = m.Mean("click@10");
  const double analytic = MeanExpectedClicks(init);
  EXPECT_NEAR(sampled, analytic, 0.08 * analytic + 0.05);
}

TEST_F(IntegrationTest, SignificanceMachineryDetectsRealGaps) {
  // Init vs a clearly-better trained model should reach p < 0.05 with CRN.
  rerank::InitReranker init;
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 8;
  rerank::PrmReranker prm(cfg);
  prm.Fit(env_->dataset(), env_->train_lists(), 6);
  eval::MethodMetrics a = eval::EvaluateReranker(*env_, prm);
  eval::MethodMetrics b = eval::EvaluateReranker(*env_, init);
  if (a.Mean("click@10") > b.Mean("click@10") * 1.02) {
    EXPECT_LT(eval::CompareMethods(a, b, "click@10"), 0.05);
  }
}

}  // namespace
}  // namespace rapid
