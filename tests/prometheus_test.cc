#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve/metrics.h"
#include "serve/prometheus.h"

namespace rapid {
namespace {

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

serve::RouterStats SampleStats() {
  serve::RouterStats stats;
  stats.total.requests = 1000;
  stats.total.fallbacks = 10;
  stats.total.shed = 5;
  stats.total.p50_us = 120.5;
  stats.total.p95_us = 700.0;
  stats.total.p99_us = 900.25;
  stats.total.mean_us = 150.0;
  stats.total.max_us = 5000;
  stats.total.batches = 64;
  stats.total.batched_lists = 512;
  stats.cache.hits = 7;
  stats.cache.misses = 3;
  stats.unknown_slot = 2;
  stats.canary_rejected = 1;
  return stats;
}

TEST(PrometheusTest, RendersCoreCountersWithHelpAndType) {
  const std::string text = serve::RenderPrometheus(SampleStats());
  EXPECT_TRUE(Contains(text, "# HELP rapid_requests_total"));
  EXPECT_TRUE(Contains(text, "# TYPE rapid_requests_total counter"));
  EXPECT_TRUE(Contains(text, "rapid_requests_total 1000\n"));
  EXPECT_TRUE(Contains(text, "rapid_fallbacks_total 10\n"));
  EXPECT_TRUE(Contains(text, "rapid_shed_total 5\n"));
  EXPECT_TRUE(Contains(text, "rapid_cache_hits_total 7\n"));
  EXPECT_TRUE(Contains(text, "rapid_canary_rejected_total 1\n"));
  EXPECT_TRUE(Contains(
      text, "rapid_latency_quantile_microseconds{quantile=\"0.5\"} 120.5\n"));
  EXPECT_TRUE(Contains(
      text, "rapid_latency_quantile_microseconds{quantile=\"0.99\"} 900.25\n"));
  // Net, online, and page sections are absent unless their blocks are
  // present.
  EXPECT_FALSE(Contains(text, "rapid_net_"));
  EXPECT_FALSE(Contains(text, "rapid_online_"));
  EXPECT_FALSE(Contains(text, "rapid_page_"));
  EXPECT_FALSE(Contains(text, "rapid_slot_"));
}

TEST(PrometheusTest, PageBlockRendersWhenPresent) {
  serve::RouterStats stats = SampleStats();
  stats.has_page = true;
  stats.page.pages = 40;
  stats.page.page_lists = 120;
  stats.page.joint_pages = 39;
  stats.page.degraded_pages = 1;
  stats.page.lists_per_page_hist[2] = 38;
  stats.page.lists_per_page_hist[7] = 2;
  stats.page.redundancy_millitopics = 523;
  stats.page.max_lists_per_page = 12;

  const std::string text = serve::RenderPrometheus(stats);
  EXPECT_TRUE(Contains(text, "# TYPE rapid_page_pages_total counter"));
  EXPECT_TRUE(Contains(text, "rapid_page_pages_total 40\n"));
  EXPECT_TRUE(Contains(text, "rapid_page_lists_total 120\n"));
  EXPECT_TRUE(Contains(text, "rapid_page_joint_total 39\n"));
  EXPECT_TRUE(Contains(text, "rapid_page_degraded_total 1\n"));
  EXPECT_TRUE(Contains(text, "rapid_page_redundancy_millitopics_total 523\n"));
  EXPECT_TRUE(Contains(text, "rapid_page_max_lists 12\n"));
  // The lists-per-page histogram labels each bin by its list count; the
  // last bin is open-ended.
  EXPECT_TRUE(Contains(
      text, "rapid_page_lists_per_page_total{lists=\"3\"} 38\n"));
  EXPECT_TRUE(Contains(
      text, "rapid_page_lists_per_page_total{lists=\"8+\"} 2\n"));
}

TEST(PrometheusTest, LatencyHistogramIsCumulativeWithInfBucket) {
  serve::RouterStats stats = SampleStats();
  stats.total.requests = 10;
  stats.total.mean_us = 20.0;
  // Two populated buckets; the series must accumulate across them and the
  // +Inf bucket must equal the total count.
  stats.total.latency_hist[serve::ServingStats::LatencyBucketIndex(10)] = 6;
  stats.total.latency_hist[serve::ServingStats::LatencyBucketIndex(1000)] = 4;
  const std::string text = serve::RenderPrometheus(stats);
  EXPECT_TRUE(Contains(text,
                       "# TYPE rapid_request_latency_microseconds histogram"));
  EXPECT_TRUE(Contains(
      text, "rapid_request_latency_microseconds_bucket{le=\"+Inf\"} 10\n"));
  EXPECT_TRUE(Contains(text, "rapid_request_latency_microseconds_count 10\n"));
  EXPECT_TRUE(Contains(text, "rapid_request_latency_microseconds_sum 200\n"));

  // The first populated bucket's cumulative count is its own.
  std::istringstream lines(text);
  std::string line;
  uint64_t first_cumulative = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("rapid_request_latency_microseconds_bucket{le=\"", 0) ==
            0 &&
        line.find("+Inf") == std::string::npos) {
      first_cumulative =
          std::stoull(line.substr(line.find("} ") + 2));
      break;
    }
  }
  EXPECT_EQ(first_cumulative, 6u);
}

TEST(PrometheusTest, NetAndOnlineBlocksRenderWhenPresent) {
  serve::RouterStats stats = SampleStats();
  stats.has_net = true;
  stats.net.connections_accepted = 4;
  stats.net.closed_idle = 1;
  stats.net.closed_slow = 2;
  stats.net.closed_protocol_error = 3;
  stats.net.feedback_frames = 17;
  stats.has_online = true;
  stats.online.feedback_appended = 90;
  stats.online.feedback_dropped = 2;
  stats.online.train_rounds = 11;
  stats.online.publishes = 3;
  stats.online.publish_rejected = 1;
  stats.online.publish_skipped = 2;
  stats.online.last_published_version = 4;

  const std::string text = serve::RenderPrometheus(stats);
  EXPECT_TRUE(Contains(text, "rapid_net_connections_accepted_total 4\n"));
  EXPECT_TRUE(Contains(text, "rapid_net_closed_total{reason=\"idle\"} 1\n"));
  EXPECT_TRUE(Contains(text, "rapid_net_closed_total{reason=\"slow\"} 2\n"));
  EXPECT_TRUE(
      Contains(text, "rapid_net_closed_total{reason=\"protocol\"} 3\n"));
  EXPECT_TRUE(Contains(text, "rapid_net_feedback_frames_total 17\n"));
  EXPECT_TRUE(Contains(text, "rapid_online_feedback_appended_total 90\n"));
  EXPECT_TRUE(Contains(text, "rapid_online_feedback_dropped_total 2\n"));
  EXPECT_TRUE(Contains(text, "rapid_online_train_rounds_total 11\n"));
  EXPECT_TRUE(Contains(text, "rapid_online_publishes_total 3\n"));
  EXPECT_TRUE(Contains(text, "rapid_online_publish_rejected_total 1\n"));
  EXPECT_TRUE(Contains(text, "rapid_online_publish_skipped_total 2\n"));
  EXPECT_TRUE(Contains(text, "rapid_online_last_published_version 4\n"));
}

TEST(PrometheusTest, SlotSeriesCarryLabelsAndEscapeValues) {
  serve::RouterStats stats = SampleStats();
  serve::RouterStats::SlotEntry slot;
  slot.slot = "main";
  slot.model_name = "RAPID\"v2\\x";  // Quote + backslash must escape.
  slot.version = 5;
  slot.stats.requests = 123;
  slot.cache.hits = 9;
  stats.slots.push_back(slot);

  const std::string text = serve::RenderPrometheus(stats);
  EXPECT_TRUE(Contains(
      text, "rapid_slot_requests_total{slot=\"main\",model=\"RAPID\\\"v2\\\\x"
            "\",version=\"5\"} 123\n"));
  EXPECT_TRUE(Contains(
      text, "rapid_slot_version{slot=\"main\",model=\"RAPID\\\"v2\\\\x\"} 5\n"));
  EXPECT_TRUE(Contains(text, "rapid_slot_cache_hits_total"));
}

TEST(PrometheusTest, EveryLineIsACommentOrASample) {
  serve::RouterStats stats = SampleStats();
  stats.has_net = true;
  stats.has_online = true;
  stats.has_page = true;
  stats.page.pages = 3;
  stats.page.lists_per_page_hist[0] = 1;
  stats.page.lists_per_page_hist[7] = 2;
  stats.total.latency_hist[3] = 7;
  serve::RouterStats::SlotEntry slot;
  slot.slot = "a";
  slot.model_name = "m";
  stats.slots.push_back(slot);

  const std::string text = serve::RenderPrometheus(stats);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');  // Exposition format requires a final \n.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // A sample: metric name (with optional labels), one space, a value.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    // Values parse as numbers (snprintf %g / integer rendering).
    EXPECT_NO_THROW((void)std::stod(value)) << line;
    const std::string name = line.substr(0, space);
    EXPECT_EQ(name.rfind("rapid_", 0), 0u) << line;
  }
}

}  // namespace
}  // namespace rapid
