#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "nn/gradcheck.h"
#include "nn/ops.h"
#include "nn/variable.h"

namespace rapid::nn {
namespace {

// ---------- basic mechanics ----------

TEST(VariableTest, ParameterStartsWithZeroGrad) {
  Variable p = Variable::Parameter(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_TRUE(p.requires_grad());
  EXPECT_TRUE(p.is_leaf());
  EXPECT_EQ(p.grad().Sum(), 0.0f);
}

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Variable c = Variable::Constant(Matrix(1, 1, {3.0f}));
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.is_leaf());
}

TEST(VariableTest, BackwardThroughSum) {
  Variable p = Variable::Parameter(Matrix(2, 3, {1, 2, 3, 4, 5, 6}));
  Variable loss = SumAll(p);
  loss.Backward();
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(p.grad().data()[i], 1.0f);
}

TEST(VariableTest, GradAccumulatesAcrossBackwardCalls) {
  Variable p = Variable::Parameter(Matrix(1, 2, {1, 1}));
  SumAll(p).Backward();
  SumAll(p).Backward();
  EXPECT_FLOAT_EQ(p.grad().at(0, 0), 2.0f);
  p.ZeroGrad();
  EXPECT_FLOAT_EQ(p.grad().at(0, 0), 0.0f);
}

TEST(VariableTest, DiamondGraphAccumulatesBothPaths) {
  // loss = sum(p + p) => dloss/dp = 2.
  Variable p = Variable::Parameter(Matrix(1, 2, {3, 4}));
  Variable loss = SumAll(Add(p, p));
  loss.Backward();
  EXPECT_FLOAT_EQ(p.grad().at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(p.grad().at(0, 1), 2.0f);
}

TEST(VariableTest, SharedSubexpressionBackpropagatesOnce) {
  // y = p*p (elementwise); loss = sum(y + y). dloss/dp = 4p.
  Variable p = Variable::Parameter(Matrix(1, 2, {2, 5}));
  Variable y = Mul(p, p);
  Variable loss = SumAll(Add(y, y));
  loss.Backward();
  EXPECT_FLOAT_EQ(p.grad().at(0, 0), 8.0f);
  EXPECT_FLOAT_EQ(p.grad().at(0, 1), 20.0f);
}

TEST(VariableTest, NoGradThroughConstants) {
  Variable p = Variable::Parameter(Matrix(1, 1, {2.0f}));
  Variable c = Variable::Constant(Matrix(1, 1, {5.0f}));
  Variable loss = SumAll(Mul(p, c));
  loss.Backward();
  EXPECT_FLOAT_EQ(p.grad().at(0, 0), 5.0f);
  // Constant's grad buffer stays empty; nothing to assert beyond no crash.
}

// ---------- exact known gradients ----------

TEST(OpsTest, MatMulForwardAndGrad) {
  Variable a = Variable::Parameter(Matrix(1, 2, {1, 2}));
  Variable b = Variable::Parameter(Matrix(2, 1, {3, 4}));
  Variable out = MatMul(a, b);
  EXPECT_FLOAT_EQ(out.value().at(0, 0), 11.0f);
  out.Backward();
  EXPECT_FLOAT_EQ(a.grad().at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(a.grad().at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(b.grad().at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b.grad().at(1, 0), 2.0f);
}

TEST(OpsTest, SigmoidForward) {
  Variable x = Variable::Constant(Matrix(1, 3, {0.0f, 100.0f, -100.0f}));
  Matrix y = Sigmoid(x).value();
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.5f);
  EXPECT_NEAR(y.at(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(y.at(0, 2), 0.0f, 1e-6f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  std::mt19937_64 rng(11);
  Variable x = Variable::Constant(Matrix::Randn(4, 7, 3.0f, rng));
  Matrix y = SoftmaxRows(x).value();
  for (int r = 0; r < 4; ++r) {
    double s = 0.0;
    for (int c = 0; c < 7; ++c) {
      EXPECT_GT(y.at(r, c), 0.0f);
      s += y.at(r, c);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Variable a = Variable::Constant(Matrix(1, 3, {1, 2, 3}));
  Variable b = Variable::Constant(Matrix(1, 3, {101, 102, 103}));
  EXPECT_TRUE(
      SoftmaxRows(a).value().AllClose(SoftmaxRows(b).value(), 1e-5f));
}

TEST(OpsTest, ConcatAndSliceRoundTrip) {
  Variable a = Variable::Constant(Matrix(2, 2, {1, 2, 3, 4}));
  Variable b = Variable::Constant(Matrix(2, 1, {5, 6}));
  Variable cat = ConcatCols({a, b});
  EXPECT_EQ(cat.cols(), 3);
  EXPECT_TRUE(SliceCols(cat, 0, 2).value().Equals(a.value()));
  EXPECT_TRUE(SliceCols(cat, 2, 1).value().Equals(b.value()));

  Variable rcat = ConcatRows({a, Variable::Constant(Matrix(1, 2, {9, 9}))});
  EXPECT_EQ(rcat.rows(), 3);
  EXPECT_TRUE(SliceRows(rcat, 0, 2).value().Equals(a.value()));
}

TEST(OpsTest, BceWithLogitsMatchesManual) {
  // p = sigmoid(z); loss = -(y log p + (1-y) log(1-p)).
  Variable z = Variable::Parameter(Matrix(1, 2, {0.3f, -1.2f}));
  Matrix y(1, 2, {1.0f, 0.0f});
  Matrix w = Matrix::Constant(1, 2, 1.0f);
  Variable loss = BceWithLogits(z, y, w);
  auto manual = [](float zi, float yi) {
    const float p = 1.0f / (1.0f + std::exp(-zi));
    return -(yi * std::log(p) + (1.0f - yi) * std::log(1.0f - p));
  };
  const float expect = (manual(0.3f, 1.0f) + manual(-1.2f, 0.0f)) / 2.0f;
  EXPECT_NEAR(loss.value().at(0, 0), expect, 1e-5f);
  loss.Backward();
  // dL/dz = (sigmoid(z) - y) / 2.
  EXPECT_NEAR(z.grad().at(0, 0),
              (1.0f / (1.0f + std::exp(-0.3f)) - 1.0f) / 2.0f, 1e-5f);
}

TEST(OpsTest, BceWeightsMaskOutEntries) {
  Variable z = Variable::Parameter(Matrix(1, 2, {5.0f, -5.0f}));
  Matrix y(1, 2, {0.0f, 0.0f});
  Matrix w(1, 2, {0.0f, 1.0f});  // First entry masked out.
  Variable loss = BceWithLogits(z, y, w);
  // Only the second term contributes: log(1+exp(-5)) approx 0.00672.
  EXPECT_NEAR(loss.value().at(0, 0), std::log1p(std::exp(-5.0f)), 1e-5f);
  loss.Backward();
  EXPECT_FLOAT_EQ(z.grad().at(0, 0), 0.0f);
  EXPECT_NE(z.grad().at(0, 1), 0.0f);
}

TEST(OpsTest, BceExtremeLogitsAreFinite) {
  Variable z = Variable::Parameter(Matrix(1, 2, {80.0f, -80.0f}));
  Matrix y(1, 2, {0.0f, 1.0f});
  Matrix w = Matrix::Constant(1, 2, 1.0f);
  Variable loss = BceWithLogits(z, y, w);
  EXPECT_TRUE(std::isfinite(loss.value().at(0, 0)));
  loss.Backward();
  EXPECT_TRUE(std::isfinite(z.grad().at(0, 0)));
}

TEST(OpsTest, DropoutTrainingZeroesAndRescales) {
  std::mt19937_64 rng(5);
  Variable x = Variable::Constant(Matrix::Constant(20, 20, 1.0f));
  Matrix y = Dropout(x, 0.5f, /*training=*/true, rng).value();
  int zeros = 0;
  for (int i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.data()[i], 2.0f);
    }
  }
  EXPECT_GT(zeros, 100);
  EXPECT_LT(zeros, 300);
}

TEST(OpsTest, DropoutEvalIsIdentity) {
  std::mt19937_64 rng(5);
  Variable x = Variable::Constant(Matrix::Constant(4, 4, 3.0f));
  Matrix y = Dropout(x, 0.9f, /*training=*/false, rng).value();
  EXPECT_TRUE(y.AllClose(x.value(), 0.0f));
}

TEST(OpsTest, MulColBroadcastMasksRows) {
  Variable x = Variable::Constant(Matrix(2, 2, {1, 2, 3, 4}));
  Variable m = Variable::Constant(Matrix(2, 1, {1, 0}));
  Matrix y = MulColBroadcast(x, m).value();
  EXPECT_TRUE(y.Equals(Matrix(2, 2, {1, 2, 0, 0})));
}

TEST(OpsTest, LayerNormRowsAreNormalized) {
  std::mt19937_64 rng(9);
  Variable x = Variable::Constant(Matrix::Randn(3, 16, 4.0f, rng));
  Variable gamma = Variable::Constant(Matrix::Constant(1, 16, 1.0f));
  Variable beta = Variable::Constant(Matrix(1, 16));
  Matrix y = LayerNorm(x, gamma, beta).value();
  for (int r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (int c = 0; c < 16; ++c) mean += y.at(r, c);
    mean /= 16;
    for (int c = 0; c < 16; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

// ---------- finite-difference gradient checks over every op ----------

class OpGradCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(OpGradCheckTest, AllOpsMatchFiniteDifferences) {
  const int seed = GetParam();
  std::mt19937_64 rng(seed);
  Variable a = Variable::Parameter(Matrix::Randn(3, 4, 0.8f, rng));
  Variable b = Variable::Parameter(Matrix::Randn(3, 4, 0.8f, rng));
  Variable w = Variable::Parameter(Matrix::Randn(4, 5, 0.8f, rng));
  Variable bias = Variable::Parameter(Matrix::Randn(1, 5, 0.8f, rng));
  Variable gamma = Variable::Parameter(Matrix::Constant(1, 4, 1.2f));
  Variable beta = Variable::Parameter(Matrix::Randn(1, 4, 0.3f, rng));

  struct Case {
    const char* name;
    std::function<Variable()> loss;
    std::vector<Variable> params;
  };
  std::vector<Case> cases = {
      {"matmul+bias",
       [&] { return SumAll(Tanh(AddRowBroadcast(MatMul(a, w), bias))); },
       {a, w, bias}},
      {"add/sub/mul mix",
       [&] { return MeanAll(Mul(Add(a, b), Sub(a, b))); },
       {a, b}},
      {"sigmoid", [&] { return SumAll(Sigmoid(a)); }, {a}},
      {"tanh", [&] { return SumAll(Tanh(a)); }, {a}},
      {"relu", [&] { return SumAll(Relu(a)); }, {a}},
      {"softplus", [&] { return SumAll(Softplus(a)); }, {a}},
      {"square", [&] { return SumAll(Square(a)); }, {a}},
      {"softmax",
       [&] { return SumAll(Mul(SoftmaxRows(a), b)); },
       {a, b}},
      {"scale+addscalar",
       [&] { return SumAll(AddScalar(Scale(a, 2.5f), 1.0f)); },
       {a}},
      {"concat cols",
       [&] { return SumAll(Square(ConcatCols({a, b}))); },
       {a, b}},
      {"concat rows",
       [&] { return SumAll(Square(ConcatRows({a, b}))); },
       {a, b}},
      {"slice cols", [&] { return SumAll(Square(SliceCols(a, 1, 2))); }, {a}},
      {"slice rows", [&] { return SumAll(Square(SliceRows(a, 1, 2))); }, {a}},
      {"transpose",
       [&] { return SumAll(Square(MatMul(Transpose(a), b))); },
       {a, b}},
      {"mean rows", [&] { return SumAll(Square(MeanRows(a))); }, {a}},
      {"sum cols", [&] { return SumAll(Square(SumCols(a))); }, {a}},
      {"mulcolbroadcast",
       [&] {
         Variable s = SliceCols(a, 0, 1);
         return SumAll(Square(MulColBroadcast(b, s)));
       },
       {a, b}},
      {"mulrowbroadcast",
       [&] {
         Variable v = SliceRows(a, 0, 1);
         return SumAll(Square(MulRowBroadcast(b, v)));
       },
       {a, b}},
      {"layernorm",
       [&] { return SumAll(Square(LayerNorm(a, gamma, beta))); },
       {a, gamma, beta}},
      {"meanall", [&] { return MeanAll(Square(a)); }, {a}},
  };
  for (const Case& c : cases) {
    GradCheckResult r = CheckGradients(c.loss, c.params);
    EXPECT_TRUE(r.ok()) << c.name << ": max_rel_error=" << r.max_rel_error
                        << " over " << r.checked << " entries";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpGradCheckTest, ::testing::Values(1, 2, 3));

TEST(OpGradCheckTest, BceWithLogitsGradient) {
  std::mt19937_64 rng(13);
  Variable z = Variable::Parameter(Matrix::Randn(4, 3, 1.0f, rng));
  Matrix y(4, 3);
  for (int i = 0; i < y.size(); ++i) y.data()[i] = (i % 2 == 0) ? 1.0f : 0.0f;
  Matrix w = Matrix::Constant(4, 3, 1.0f);
  w.at(0, 0) = 0.0f;  // Include a masked entry.
  GradCheckResult r =
      CheckGradients([&] { return BceWithLogits(z, y, w); }, {z});
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

}  // namespace
}  // namespace rapid::nn
