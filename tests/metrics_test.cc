#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "datagen/simulator.h"

namespace rapid::metrics {
namespace {

TEST(ClickAtKTest, CountsPrefixOnly) {
  std::vector<int> clicks = {1, 0, 1, 1, 0, 1};
  EXPECT_FLOAT_EQ(ClickAtK(clicks, 3), 2.0f);
  EXPECT_FLOAT_EQ(ClickAtK(clicks, 6), 4.0f);
  EXPECT_FLOAT_EQ(ClickAtK(clicks, 100), 4.0f);
  EXPECT_FLOAT_EQ(ClickAtK({}, 5), 0.0f);
}

TEST(NdcgTest, PerfectOrderingIsOne) {
  EXPECT_FLOAT_EQ(NdcgAtK({1, 1, 0, 0}, 4), 1.0f);
}

TEST(NdcgTest, WorstOrderingBelowOne) {
  const float ndcg = NdcgAtK({0, 0, 1, 1}, 4);
  EXPECT_GT(ndcg, 0.0f);
  EXPECT_LT(ndcg, 1.0f);
  // DCG = 1/log2(4) + 1/log2(5); IDCG = 1/log2(2) + 1/log2(3).
  const float expect =
      (1.0f / std::log2(4.0f) + 1.0f / std::log2(5.0f)) /
      (1.0f / std::log2(2.0f) + 1.0f / std::log2(3.0f));
  EXPECT_NEAR(ndcg, expect, 1e-5f);
}

TEST(NdcgTest, NoClicksIsZero) {
  EXPECT_FLOAT_EQ(NdcgAtK({0, 0, 0}, 3), 0.0f);
}

TEST(NdcgTest, MonotoneInClickPosition) {
  EXPECT_GT(NdcgAtK({1, 0, 0, 0}, 4), NdcgAtK({0, 1, 0, 0}, 4));
  EXPECT_GT(NdcgAtK({0, 1, 0, 0}, 4), NdcgAtK({0, 0, 0, 1}, 4));
}

TEST(DivRevTest, AgainstDataset) {
  data::SimConfig cfg;
  cfg.kind = data::DatasetKind::kAppStore;
  cfg.num_users = 10;
  cfg.num_items = 100;
  data::Dataset data = data::GenerateDataset(cfg, 33);

  // One-hot items: div@k equals the number of distinct topics in prefix.
  std::vector<int> items = {0, 1, 2, 3, 4};
  float div = DivAtK(data, items, 5);
  std::vector<bool> seen(data.num_topics, false);
  int distinct = 0;
  for (int v : items) {
    for (int j = 0; j < data.num_topics; ++j) {
      if (data.items[v].topic_coverage[j] == 1.0f && !seen[j]) {
        seen[j] = true;
        ++distinct;
      }
    }
  }
  EXPECT_NEAR(div, static_cast<float>(distinct), 1e-5f);

  // rev@k sums bids over clicked prefix items.
  std::vector<int> clicks = {1, 0, 1, 0, 1};
  const float rev = RevAtK(data, items, clicks, 3);
  EXPECT_NEAR(rev, data.items[0].bid + data.items[2].bid, 1e-5f);
}

TEST(SummaryTest, MeanAndStddev) {
  Summary s = Summarize({2.0f, 4.0f, 4.0f, 4.0f, 5.0f, 5.0f, 7.0f, 9.0f});
  EXPECT_NEAR(s.mean, 5.0, 1e-9);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-6);
  EXPECT_EQ(s.n, 8);
}

TEST(SummaryTest, EmptyAndSingleton) {
  EXPECT_EQ(Summarize({}).n, 0);
  Summary s = Summarize({3.0f});
  EXPECT_NEAR(s.mean, 3.0, 1e-9);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(StudentTTest, CdfKnownValues) {
  // t=0 -> 0.5 for any df.
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-9);
  // df=1 is Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-6);
  // Large df approaches the normal: CDF(1.96, 1e6) ~ 0.975.
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), 0.975, 1e-3);
  // Symmetry.
  EXPECT_NEAR(StudentTCdf(-2.0, 10.0) + StudentTCdf(2.0, 10.0), 1.0, 1e-9);
}

TEST(PairedTTest, IdenticalSamplesGivePOne) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  EXPECT_NEAR(PairedTTestPValue(a, a), 1.0, 1e-9);
}

TEST(PairedTTest, ClearDifferenceGivesSmallP) {
  std::mt19937_64 rng(1);
  std::normal_distribution<float> noise(0.0f, 0.1f);
  std::vector<float> a, b;
  for (int i = 0; i < 50; ++i) {
    const float base = noise(rng);
    a.push_back(base + 1.0f);
    b.push_back(base);
  }
  EXPECT_LT(PairedTTestPValue(a, b), 1e-6);
}

TEST(PairedTTest, NullDifferenceUsuallyNotSignificant) {
  std::mt19937_64 rng(2);
  std::normal_distribution<float> noise(0.0f, 1.0f);
  int significant = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<float> a, b;
    for (int i = 0; i < 30; ++i) {
      a.push_back(noise(rng));
      b.push_back(noise(rng));
    }
    if (PairedTTestPValue(a, b) < 0.05) ++significant;
  }
  // ~5% false positive rate; allow generous slack.
  EXPECT_LE(significant, 8);
}

}  // namespace
}  // namespace rapid::metrics
