#include "nn/embedding.h"

#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/optimizer.h"

namespace rapid::nn {
namespace {

TEST(EmbeddingTest, LookupShapesAndValues) {
  std::mt19937_64 rng(1);
  Embedding emb(10, 4, rng);
  EXPECT_EQ(emb.vocab(), 10);
  EXPECT_EQ(emb.dim(), 4);
  Variable rows = emb.Lookup({3, 7, 3});
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_EQ(rows.cols(), 4);
  // Duplicate ids return identical rows.
  for (int c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(rows.value().at(0, c), rows.value().at(2, c));
  }
  // LookupOne matches Lookup.
  Variable one = emb.LookupOne(7);
  for (int c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(one.value().at(0, c), rows.value().at(1, c));
  }
}

TEST(EmbeddingTest, GradientsScatterOnlyToReferencedRows) {
  std::mt19937_64 rng(2);
  Embedding emb(6, 3, rng);
  Variable table = emb.Params()[0];
  table.ZeroGrad();
  Variable out = emb.Lookup({1, 4});
  SumAll(out).Backward();
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 3; ++c) {
      const float g = table.grad().at(r, c);
      if (r == 1 || r == 4) {
        EXPECT_FLOAT_EQ(g, 1.0f);
      } else {
        EXPECT_FLOAT_EQ(g, 0.0f);
      }
    }
  }
}

TEST(EmbeddingTest, DuplicateIdsAccumulateGradient) {
  std::mt19937_64 rng(3);
  Embedding emb(4, 2, rng);
  Variable table = emb.Params()[0];
  table.ZeroGrad();
  SumAll(emb.Lookup({2, 2, 2})).Backward();
  EXPECT_FLOAT_EQ(table.grad().at(2, 0), 3.0f);
}

TEST(EmbeddingTest, GradCheck) {
  std::mt19937_64 rng(4);
  Embedding emb(5, 3, rng);
  GradCheckResult r = CheckGradients(
      [&] { return SumAll(Square(emb.Lookup({0, 2, 2, 4}))); },
      emb.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(EmbeddingTest, TrainableEndToEnd) {
  // Learn embeddings so that id 0 scores high and id 1 scores low through
  // a fixed linear readout.
  std::mt19937_64 rng(5);
  Embedding emb(2, 4, rng);
  Variable readout = Variable::Constant(Matrix::Constant(4, 1, 1.0f));
  Adam opt(emb.Params(), 0.05f);
  Matrix targets(2, 1, {1.0f, 0.0f});
  Matrix weights = Matrix::Constant(2, 1, 1.0f);
  float loss_val = 1.0f;
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Variable logits = MatMul(emb.Lookup({0, 1}), readout);
    Variable loss = BceWithLogits(logits, targets, weights);
    loss.Backward();
    opt.Step();
    loss_val = loss.value().at(0, 0);
  }
  EXPECT_LT(loss_val, 0.05f);
}

}  // namespace
}  // namespace rapid::nn
