#include "eval/pipeline.h"

#include <gtest/gtest.h>

#include "eval/table.h"
#include "rankers/svmrank.h"
#include "rerank/mmr.h"
#include "rerank/reranker.h"

namespace rapid::eval {
namespace {

PipelineConfig SmallConfig() {
  PipelineConfig cfg;
  cfg.sim.kind = data::DatasetKind::kTaobao;
  cfg.sim.num_users = 30;
  cfg.sim.num_items = 200;
  cfg.sim.rerank_lists_per_user = 2;
  cfg.sim.test_lists_per_user = 1;
  cfg.sim.candidates_per_request = 30;
  cfg.list_len = 10;
  cfg.seed = 5;
  return cfg;
}

class EvalTest : public ::testing::Test {
 protected:
  EvalTest()
      : env_(SmallConfig(), std::make_unique<rank::SvmRankRanker>()) {}
  Environment env_;
};

TEST_F(EvalTest, EnvironmentStructure) {
  EXPECT_EQ(env_.train_lists().size(), 60u);
  EXPECT_EQ(env_.test_lists().size(), 30u);
  for (const auto& list : env_.train_lists()) {
    EXPECT_EQ(list.items.size(), 10u);
    EXPECT_EQ(list.clicks.size(), 10u);
    EXPECT_EQ(list.scores.size(), 10u);
  }
  for (const auto& list : env_.test_lists()) {
    EXPECT_TRUE(list.clicks.empty());
    // Initial lists must be sorted by ranker score.
    for (size_t i = 1; i < list.scores.size(); ++i) {
      EXPECT_GE(list.scores[i - 1], list.scores[i]);
    }
  }
}

TEST_F(EvalTest, TrainingClicksAreNonTrivial) {
  int total = 0;
  for (const auto& list : env_.train_lists()) {
    for (int c : list.clicks) total += c;
  }
  EXPECT_GT(total, 20) << "the click model should produce clicks";
  EXPECT_LT(total, 60 * 10) << "but not click everything";
}

TEST_F(EvalTest, EvaluateProducesAlignedMetrics) {
  rerank::InitReranker init;
  MethodMetrics m = EvaluateReranker(env_, init, {5, 10});
  const std::vector<std::string> expected = {
      "click@5",  "ndcg@5",  "div@5",  "satis@5",
      "click@10", "ndcg@10", "div@10", "satis@10"};
  for (const std::string& name : expected) {
    ASSERT_TRUE(m.per_request.count(name)) << name;
    EXPECT_EQ(m.per_request.at(name).size(), env_.test_lists().size());
  }
  // Taobao has no bids: no rev metric.
  EXPECT_FALSE(m.per_request.count("rev@5"));
  // Monotonicity: click@10 >= click@5 on average.
  EXPECT_GE(m.Mean("click@10"), m.Mean("click@5"));
  EXPECT_GE(m.Mean("div@10"), m.Mean("div@5"));
  EXPECT_GE(m.Mean("satis@10"), m.Mean("satis@5") - 1e-6);
}

TEST_F(EvalTest, EvaluationIsDeterministic) {
  rerank::InitReranker init;
  MethodMetrics a = EvaluateReranker(env_, init);
  MethodMetrics b = EvaluateReranker(env_, init);
  EXPECT_EQ(a.per_request.at("click@5"), b.per_request.at("click@5"));
}

TEST_F(EvalTest, CommonRandomNumbersShareNoiseForIdenticalLists) {
  // Two methods producing the same permutation must get identical clicks.
  rerank::InitReranker init;
  rerank::MmrReranker pure_rel(/*trade=*/1.0f);  // Keeps score order.
  MethodMetrics a = EvaluateReranker(env_, init);
  MethodMetrics b = EvaluateReranker(env_, pure_rel);
  EXPECT_EQ(a.per_request.at("click@5"), b.per_request.at("click@5"));
}

TEST_F(EvalTest, MoreRealizationsReduceNoise) {
  rerank::InitReranker init;
  MethodMetrics few = EvaluateReranker(env_, init, {5}, 777, 1);
  MethodMetrics many = EvaluateReranker(env_, init, {5}, 777, 16);
  // Means should be close (same distribution), but not identical samples.
  EXPECT_NEAR(few.Mean("click@5"), many.Mean("click@5"), 0.5);
}

TEST_F(EvalTest, CompareMethodsSelfIsNotSignificant) {
  rerank::InitReranker init;
  MethodMetrics a = EvaluateReranker(env_, init);
  EXPECT_NEAR(CompareMethods(a, a, "click@5"), 1.0, 1e-9);
}

TEST_F(EvalTest, AppStoreEnvironmentReportsRevenue) {
  PipelineConfig cfg = SmallConfig();
  cfg.sim.kind = data::DatasetKind::kAppStore;
  Environment env(cfg, std::make_unique<rank::SvmRankRanker>());
  rerank::InitReranker init;
  MethodMetrics m = EvaluateReranker(env, init);
  ASSERT_TRUE(m.per_request.count("rev@5"));
  EXPECT_GT(m.Mean("rev@10"), 0.0);
  EXPECT_GE(m.Mean("rev@10"), m.Mean("rev@5"));
}

TEST(ResultTableTest, RenderAndImprovement) {
  MethodMetrics a, b;
  a.name = "A";
  b.name = "B";
  a.per_request["click@5"] = {1.0f, 2.0f};  // mean 1.5
  b.per_request["click@5"] = {1.0f, 1.0f};  // mean 1.0
  ResultTable table({"click@5"});
  table.AddRow(a);
  table.AddRow(b);
  const std::string out = table.Render("test");
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("1.5000*"), std::string::npos);
  EXPECT_NEAR(table.ImprovementPercent("A", "B", "click@5"), 50.0, 1e-9);
}

}  // namespace
}  // namespace rapid::eval
