// Property suite for the online-learning loop (online/feedback.h,
// online/trainer.h, online/policy.h): the ROADMAP invariant is that
// feedback -> trainer -> publish preserves slot wrappers and version
// monotonicity. Under arbitrary feedback schedules,
//
//   - the feedback log stays a bounded FIFO that drops (never blocks) at
//     capacity, with exact appended/dropped/drained accounting;
//   - every version the slot ever exposes is non-decreasing over time and
//     each accepted publish lands a strictly newer version;
//   - the UCB wrapper set on the slot survives every republish (the
//     published model's name keeps the "UCB(" envelope);
//   - the republished slot still serves permutations of its input.
//
// Counterexamples shrink to a minimal schedule and print a replayable
// seed (see tests/proptest.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "online/feedback.h"
#include "online/policy.h"
#include "online/trainer.h"
#include "proptest.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace rapid {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// FeedbackLog: bounded FIFO with drop-never-block accounting.

struct LogOp {
  bool append = true;
  int drain = 1;  // Max events drained when !append.
};

struct LogSchedule {
  int capacity = 4;
  std::vector<LogOp> ops;
};

TEST(OnlinePropertyTest, FeedbackLogIsABoundedFifoThatDropsNeverBlocks) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260840, /*trials=*/100,
      [](std::mt19937_64& rng) {
        LogSchedule schedule;
        std::uniform_int_distribution<int> capacity(1, 8);
        std::uniform_int_distribution<int> len(1, 60);
        std::uniform_int_distribution<int> kind(0, 2);
        std::uniform_int_distribution<int> drain(1, 6);
        schedule.capacity = capacity(rng);
        schedule.ops.resize(static_cast<size_t>(len(rng)));
        for (LogOp& op : schedule.ops) {
          op.append = kind(rng) != 0;  // Bias toward appends to hit the cap.
          op.drain = drain(rng);
        }
        return schedule;
      },
      [](const LogSchedule& schedule) {
        std::vector<LogSchedule> out;
        for (std::vector<LogOp>& ops : proptest::ShrinkOps(schedule.ops)) {
          out.push_back({schedule.capacity, std::move(ops)});
        }
        return out;
      },
      [](const LogSchedule& schedule) {
        online::FeedbackLogConfig config;
        config.capacity = static_cast<size_t>(schedule.capacity);
        online::FeedbackLog log(config);
        std::deque<int> model;
        uint64_t appended = 0, dropped = 0, drained = 0;
        int next_user = 0;
        for (const LogOp& op : schedule.ops) {
          if (op.append) {
            online::FeedbackEvent event;
            event.slot = "online";
            event.list.user_id = next_user;
            event.list.items = {0, 1, 2};
            event.list.clicks = {1, 0, 1};
            const bool accepted = log.Append(std::move(event));
            const bool expect_accept =
                model.size() < static_cast<size_t>(schedule.capacity);
            if (accepted != expect_accept) return false;
            if (accepted) {
              model.push_back(next_user);
              ++appended;
            } else {
              ++dropped;
            }
            ++next_user;
            continue;
          }
          std::vector<online::FeedbackEvent> batch;
          const size_t got =
              log.Drain(static_cast<size_t>(op.drain), &batch);
          const size_t expect =
              std::min(model.size(), static_cast<size_t>(op.drain));
          if (got != expect || batch.size() != expect) return false;
          for (const online::FeedbackEvent& event : batch) {
            if (model.empty() || event.list.user_id != model.front()) {
              return false;  // FIFO violated.
            }
            model.pop_front();
            ++drained;
          }
        }
        if (log.size() != model.size()) return false;
        serve::OnlineStats stats;
        log.FillStats(&stats);
        return stats.feedback_appended == appended &&
               stats.feedback_dropped == dropped &&
               stats.feedback_drained == drained;
      },
      [](const LogSchedule& schedule) {
        std::ostringstream os;
        os << "capacity=" << schedule.capacity << " ops=[";
        for (const LogOp& op : schedule.ops) {
          os << (op.append ? "A" : ("d" + std::to_string(op.drain)));
        }
        os << "]";
        return os.str();
      }));
}

// ---------------------------------------------------------------------------
// The full loop: feedback -> trainer -> canary-guarded publish.

class OnlineLoopPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 15;
    cfg.num_items = 100;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 77);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(3);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }

  std::unique_ptr<core::RapidReranker> FittedModel(uint64_t seed) {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = 8;
    auto model = std::make_unique<core::RapidReranker>(cfg);
    model->Fit(data_, train_, seed);
    return model;
  }

  /// Polls `predicate` until it holds or ~5s elapse.
  template <typename Predicate>
  static bool Eventually(Predicate predicate) {
    for (int i = 0; i < 500; ++i) {
      if (predicate()) return true;
      std::this_thread::sleep_for(10ms);
    }
    return predicate();
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

struct LoopRun {
  int first_wave = 2;   // Feedback events before the first publish check.
  int second_wave = 2;  // Events appended afterwards to force a republish.
};

TEST_F(OnlineLoopPropertyTest, PublishesKeepVersionsMonotoneAndWrapperIntact) {
  int trial_id = 0;
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260841, /*trials=*/3,
      [](std::mt19937_64& rng) {
        std::uniform_int_distribution<int> wave(1, 6);
        LoopRun run;
        run.first_wave = wave(rng);
        run.second_wave = wave(rng);
        return run;
      },
      [](const LoopRun& run) {
        std::vector<LoopRun> out;
        if (run.first_wave > 1) out.push_back({1, run.second_wave});
        if (run.second_wave > 1) out.push_back({run.first_wave, 1});
        return out;
      },
      [&, this](const LoopRun& run) {
        serve::ServingRouter router(data_, {});
        auto pulls = std::make_shared<online::PullCounts>();
        router.SetSlotWrapper(
            "online", [pulls](std::shared_ptr<const rerank::Reranker> model) {
              online::OnlinePolicyConfig cfg;
              cfg.exploration = 0.0;  // Deterministic envelope.
              return std::make_shared<const online::OnlinePolicy>(
                  std::move(model), pulls, cfg);
            });

        const std::string initial_path = ::testing::TempDir() +
                                         "/online_prop_initial_" +
                                         std::to_string(trial_id) + ".rsnp";
        if (!serve::Snapshot::Save(initial_path, *FittedModel(6), data_)) {
          return false;
        }
        const uint64_t initial = router.LoadSlot("online", initial_path);
        if (initial == 0) return false;

        online::FeedbackLog log;
        online::OnlineTrainerConfig cfg;
        cfg.slot = "online";
        cfg.min_batch = 1;
        cfg.max_batch = 4;
        cfg.publish_every_rounds = 1;
        cfg.poll_interval = 5ms;
        cfg.snapshot_path = ::testing::TempDir() + "/online_prop_pub_" +
                            std::to_string(trial_id++) + ".rsnp";
        online::OnlineTrainer trainer(data_, &router, &log, FittedModel(7),
                                      cfg);
        trainer.Start();

        // Version monotonicity is checked on every sample the slot ever
        // exposes, not just the endpoints.
        uint64_t last_seen = initial;
        auto versions_monotone = [&] {
          const uint64_t now = router.SlotVersion("online");
          if (now < last_seen) return false;
          last_seen = now;
          return true;
        };

        auto feed = [&](int events) {
          for (int i = 0; i < events; ++i) {
            online::FeedbackEvent event;
            event.slot = "online";
            event.model_version = last_seen;
            event.list = train_[static_cast<size_t>(i) % train_.size()];
            if (!log.Append(std::move(event))) return false;
          }
          return true;
        };

        if (!feed(run.first_wave)) return false;
        bool monotone = true;
        if (!Eventually([&] {
              monotone = monotone && versions_monotone();
              return trainer.Stats().publishes >= 1;
            })) {
          return false;
        }
        const serve::OnlineStats first_stats = trainer.Stats();
        const uint64_t after_first = first_stats.last_published_version;
        if (after_first <= initial) return false;  // Publish moved forward.

        if (!feed(run.second_wave)) return false;
        if (!Eventually([&] {
              monotone = monotone && versions_monotone();
              return trainer.Stats().publishes >= first_stats.publishes + 1;
            })) {
          return false;
        }
        trainer.Stop();
        if (!monotone || !versions_monotone()) return false;

        const serve::OnlineStats stats = trainer.Stats();
        if (stats.last_published_version <= after_first) return false;
        if (router.SlotVersion("online") != stats.last_published_version) {
          return false;
        }

        // The wrapper survived every republish: the live model still
        // carries the UCB envelope.
        const serve::RouterStats router_stats = router.stats();
        if (router_stats.slots.size() != 1) return false;
        if (router_stats.slots[0].model_name.rfind("UCB(", 0) != 0) {
          return false;
        }

        // And the republished slot still serves permutations.
        serve::RouterRequest request;
        request.slot = "online";
        request.list = train_.front();
        request.list.clicks.clear();
        std::vector<int> sorted = request.list.items;
        const serve::RouterResponse response =
            router.Submit(std::move(request)).get();
        if (response.degraded) return false;
        std::vector<int> items = response.items;
        std::sort(items.begin(), items.end());
        std::sort(sorted.begin(), sorted.end());
        router.Shutdown();
        return items == sorted;
      },
      [](const LoopRun& run) {
        std::ostringstream os;
        os << "first_wave=" << run.first_wave
           << " second_wave=" << run.second_wave;
        return os.str();
      }));
}

}  // namespace
}  // namespace rapid
