// Property suite for the dispatched math kernels (nn/kernels.h): the
// scalar backend is the bit-for-bit reference the repo's exactness gates
// stand on, and the AVX2 backend must agree with it to rounding. Shapes
// are generated around the vector-width boundaries (tails of 1..15 lanes,
// 1-row/1-col, empty) where masked-tail bugs live, across all Gemm
// transpose/accumulate combinations. Also proves the tiling-independence
// claim both backends make: an output element's bits do not depend on the
// shape of the matrix it is computed inside.

#include "nn/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "proptest.h"

namespace rapid::nn {
namespace {

namespace kernel = rapid::nn::kernel;

// Dimensions biased to straddle the 8- and 16-lane boundaries of the AVX2
// kernels, plus degenerate cases.
int BoundaryDim(std::mt19937_64& rng) {
  static const int kDims[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33};
  std::uniform_int_distribution<int> pick(0, 15);
  const int p = pick(rng);
  if (p < 14) return kDims[p];
  std::uniform_int_distribution<int> any(1, 48);
  return any(rng);
}

struct GemmCase {
  int m = 1, n = 1, k = 1;
  bool trans_a = false, trans_b = false, accumulate = false;
  uint64_t data_seed = 0;
};

std::string Describe(const GemmCase& c) {
  std::ostringstream os;
  os << "Gemm m=" << c.m << " n=" << c.n << " k=" << c.k
     << " trans_a=" << c.trans_a << " trans_b=" << c.trans_b
     << " accumulate=" << c.accumulate << " data_seed=" << c.data_seed;
  return os.str();
}

// Shrinks toward small dims and the plain NN non-accumulating form.
std::vector<GemmCase> Shrink(const GemmCase& c) {
  std::vector<GemmCase> out;
  for (int dim = 0; dim < 3; ++dim) {
    int GemmCase::* field =
        dim == 0 ? &GemmCase::m : dim == 1 ? &GemmCase::n : &GemmCase::k;
    if (c.*field > 0) {
      GemmCase smaller = c;
      smaller.*field = (c.*field) / 2;
      out.push_back(smaller);
    }
  }
  for (bool GemmCase::* flag :
       {&GemmCase::trans_a, &GemmCase::trans_b, &GemmCase::accumulate}) {
    if (c.*flag) {
      GemmCase simpler = c;
      simpler.*flag = false;
      out.push_back(simpler);
    }
  }
  return out;
}

GemmCase GenCase(std::mt19937_64& rng) {
  GemmCase c;
  c.m = BoundaryDim(rng);
  c.n = BoundaryDim(rng);
  c.k = BoundaryDim(rng);
  c.trans_a = rng() % 2 == 0;
  c.trans_b = rng() % 2 == 0;
  c.accumulate = rng() % 2 == 0;
  c.data_seed = rng();
  return c;
}

// Runs the case under `backend` (falling back to scalar when AVX2 is not
// available, which degrades the cross-backend check to a self-check).
Matrix RunGemm(const GemmCase& c, kernel::Backend backend) {
  kernel::ScopedBackendOverride force(backend);
  std::mt19937_64 rng(c.data_seed);
  const Matrix a = c.trans_a ? Matrix::Randn(c.k, c.m, 1.0f, rng)
                             : Matrix::Randn(c.m, c.k, 1.0f, rng);
  const Matrix b = c.trans_b ? Matrix::Randn(c.n, c.k, 1.0f, rng)
                             : Matrix::Randn(c.k, c.n, 1.0f, rng);
  Matrix out;
  if (c.accumulate) out = Matrix::Randn(c.m, c.n, 1.0f, rng);
  Gemm(a, b, &out,
       {.trans_a = c.trans_a, .trans_b = c.trans_b,
        .accumulate = c.accumulate});
  return out;
}

// Double-precision reference, independent of the kernel layer.
Matrix ReferenceGemm(const GemmCase& c) {
  std::mt19937_64 rng(c.data_seed);
  const Matrix a = c.trans_a ? Matrix::Randn(c.k, c.m, 1.0f, rng)
                             : Matrix::Randn(c.m, c.k, 1.0f, rng);
  const Matrix b = c.trans_b ? Matrix::Randn(c.n, c.k, 1.0f, rng)
                             : Matrix::Randn(c.k, c.n, 1.0f, rng);
  Matrix out(c.m, c.n);
  if (c.accumulate) out = Matrix::Randn(c.m, c.n, 1.0f, rng);
  for (int i = 0; i < c.m; ++i) {
    for (int j = 0; j < c.n; ++j) {
      double s = out.at(i, j);
      for (int kk = 0; kk < c.k; ++kk) {
        const float av = c.trans_a ? a.at(kk, i) : a.at(i, kk);
        const float bv = c.trans_b ? b.at(j, kk) : b.at(kk, j);
        s += static_cast<double>(av) * bv;
      }
      out.at(i, j) = static_cast<float>(s);
    }
  }
  return out;
}

// Absolute tolerance for a length-k dot product of ~N(0,1) values: each
// partial sum has magnitude ~sqrt(k), so rounding differences (FMA
// contraction, summation order inside one lane) stay far below this.
float GemmTol(int k) { return 1e-4f * std::sqrt(static_cast<float>(k) + 1.0f); }

TEST(KernelPropertyTest, GemmBackendsAgreeOnSeededShapes) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/0xC0FFEE01, /*trials=*/80, GenCase, Shrink,
      [](const GemmCase& c) {
        const Matrix scalar = RunGemm(c, kernel::Backend::kScalar);
        const Matrix simd = RunGemm(c, kernel::Backend::kAvx2);
        const Matrix ref = ReferenceGemm(c);
        return scalar.AllClose(simd, GemmTol(c.k)) &&
               scalar.AllClose(ref, GemmTol(c.k)) &&
               simd.AllClose(ref, GemmTol(c.k));
      },
      Describe));
}

// Shape-tiling independence, the property the batched-inference exactness
// contract rests on: an output element computed inside a full matrix is
// bitwise the element computed alone (1x1 output), on BOTH backends. This
// is what guarantees register blocking and masked tails never change bits.
TEST(KernelPropertyTest, GemmElementsIndependentOfTiling) {
  std::vector<kernel::Backend> backends = {kernel::Backend::kScalar};
  if (kernel::Avx2Available()) backends.push_back(kernel::Backend::kAvx2);
  for (const kernel::Backend backend : backends) {
    EXPECT_TRUE(proptest::ForAll(
        /*seed=*/0xC0FFEE02, /*trials=*/20,
        [](std::mt19937_64& rng) {
          GemmCase c = GenCase(rng);
          c.m = std::max(1, std::min(c.m, 9));
          c.n = std::max(1, std::min(c.n, 20));
          c.k = std::max(1, c.k);
          c.accumulate = false;
          return c;
        },
        Shrink,
        [backend](const GemmCase& c) {
          kernel::ScopedBackendOverride force(backend);
          std::mt19937_64 rng(c.data_seed);
          const Matrix a = c.trans_a ? Matrix::Randn(c.k, c.m, 1.0f, rng)
                                     : Matrix::Randn(c.m, c.k, 1.0f, rng);
          const Matrix b = c.trans_b ? Matrix::Randn(c.n, c.k, 1.0f, rng)
                                     : Matrix::Randn(c.k, c.n, 1.0f, rng);
          Matrix full;
          Gemm(a, b, &full, {.trans_a = c.trans_a, .trans_b = c.trans_b});
          for (int i = 0; i < c.m; ++i) {
            for (int j = 0; j < c.n; ++j) {
              // The same element as a 1x1 product, keeping each operand in
              // its original layout and the SAME transpose flags so the
              // probe runs through the same kernel as the full call.
              Matrix sub_a = c.trans_a ? Matrix(c.k, 1) : Matrix(1, c.k);
              Matrix sub_b = c.trans_b ? Matrix(1, c.k) : Matrix(c.k, 1);
              for (int kk = 0; kk < c.k; ++kk) {
                sub_a.data()[kk] = c.trans_a ? a.at(kk, i) : a.at(i, kk);
                sub_b.data()[kk] = c.trans_b ? b.at(j, kk) : b.at(kk, j);
              }
              Matrix one;
              Gemm(sub_a, sub_b, &one,
                   {.trans_a = c.trans_a, .trans_b = c.trans_b});
              if (std::memcmp(&one.at(0, 0), &full.at(i, j), sizeof(float)) !=
                  0) {
                return false;
              }
            }
          }
          return true;
        },
        Describe));
  }
}

struct VecCase {
  std::vector<float> values;
  uint64_t op_seed = 0;
};

VecCase GenVec(std::mt19937_64& rng) {
  VecCase c;
  const int n = BoundaryDim(rng);
  std::normal_distribution<float> dist(0.0f, 4.0f);  // Exercises exp clamps.
  c.values.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) c.values.push_back(dist(rng));
  c.op_seed = rng();
  return c;
}

std::vector<VecCase> ShrinkVec(const VecCase& c) {
  std::vector<VecCase> out;
  if (c.values.empty()) return out;
  VecCase half = c;
  half.values.resize(c.values.size() / 2);
  out.push_back(std::move(half));
  for (size_t i = 0; i < c.values.size(); ++i) {
    if (c.values[i] == 0.0f) continue;
    VecCase zeroed = c;
    zeroed.values[i] = 0.0f;
    out.push_back(std::move(zeroed));
  }
  return out;
}

std::string DescribeVec(const VecCase& c) {
  std::ostringstream os;
  os << c.values.size() << " floats [";
  for (size_t i = 0; i < c.values.size() && i < 16; ++i) {
    if (i) os << ", ";
    os << c.values[i];
  }
  if (c.values.size() > 16) os << ", ...";
  os << "]";
  return os.str();
}

TEST(KernelPropertyTest, ActivationsAgreeAcrossBackends) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/0xC0FFEE03, /*trials=*/60, GenVec, ShrinkVec,
      [](const VecCase& c) {
        const int n = static_cast<int>(c.values.size());
        std::vector<float> a(static_cast<size_t>(n)), b(a);
        {
          kernel::ScopedBackendOverride force(kernel::Backend::kScalar);
          kernel::Active().sigmoid(c.values.data(), a.data(), n);
        }
        {
          kernel::ScopedBackendOverride force(kernel::Backend::kAvx2);
          kernel::Active().sigmoid(c.values.data(), b.data(), n);
        }
        for (int i = 0; i < n; ++i) {
          if (std::fabs(a[i] - b[i]) > 2e-6f) return false;
        }
        {
          kernel::ScopedBackendOverride force(kernel::Backend::kScalar);
          kernel::Active().tanh_act(c.values.data(), a.data(), n);
        }
        {
          kernel::ScopedBackendOverride force(kernel::Backend::kAvx2);
          kernel::Active().tanh_act(c.values.data(), b.data(), n);
        }
        for (int i = 0; i < n; ++i) {
          if (std::fabs(a[i] - b[i]) > 1e-5f) return false;
        }
        return true;
      },
      DescribeVec));
}

TEST(KernelPropertyTest, BitExactElementwiseOpsMatchAcrossBackends) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/0xC0FFEE04, /*trials=*/60, GenVec, ShrinkVec,
      [](const VecCase& c) {
        const int n = static_cast<int>(c.values.size());
        std::mt19937_64 rng(c.op_seed);
        std::normal_distribution<float> dist(0.0f, 2.0f);
        std::vector<float> other(static_cast<size_t>(n));
        for (float& v : other) v = dist(rng);
        const float s = dist(rng);

        auto run = [&](kernel::Backend backend, int op) {
          kernel::ScopedBackendOverride force(backend);
          const kernel::KernelTable& kt = kernel::Active();
          std::vector<float> y(static_cast<size_t>(n));
          switch (op) {
            case 0:  // relu: maxps(x, 0) == (x > 0 ? x : 0) bit for bit.
              kt.relu(c.values.data(), y.data(), n);
              break;
            case 1:  // add: one rounding on both backends.
              kt.add(c.values.data(), other.data(), y.data(), n);
              break;
            case 2:  // mul: one rounding on both backends.
              kt.mul(c.values.data(), other.data(), y.data(), n);
              break;
            case 3:  // axpy with s=-1: (-1)*x is exact, so FMA == sub.
              y = c.values;
              kt.axpy(y.data(), -1.0f, other.data(), n);
              break;
            case 4:  // scale: one rounding on both backends.
              y = c.values;
              kt.scale(y.data(), s, n);
              break;
            default:  // bias_row over a 1-row matrix: plain adds.
              y = c.values;
              kt.bias_row(y.data(), other.data(), 1, n);
              break;
          }
          return y;
        };
        for (int op = 0; op <= 5; ++op) {
          const std::vector<float> a = run(kernel::Backend::kScalar, op);
          const std::vector<float> b = run(kernel::Backend::kAvx2, op);
          if (n > 0 && std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(float)) != 0) {
            return false;
          }
        }
        return true;
      },
      DescribeVec));
}

TEST(KernelPropertyTest, SoftmaxRowsAgreeAcrossBackends) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/0xC0FFEE05, /*trials=*/40, GenVec, ShrinkVec,
      [](const VecCase& c) {
        const int cols = static_cast<int>(c.values.size());
        if (cols == 0) return true;
        const int rows = 3;
        std::mt19937_64 rng(c.op_seed);
        Matrix x(rows, cols);
        for (int r = 0; r < rows; ++r) {
          for (int j = 0; j < cols; ++j) {
            x.at(r, j) = c.values[static_cast<size_t>(j)] +
                         0.1f * static_cast<float>(r);
          }
        }
        Matrix a = x, b = x;
        {
          kernel::ScopedBackendOverride force(kernel::Backend::kScalar);
          kernel::Active().softmax_rows(a.data(), rows, cols);
        }
        {
          kernel::ScopedBackendOverride force(kernel::Backend::kAvx2);
          kernel::Active().softmax_rows(b.data(), rows, cols);
        }
        if (!a.AllClose(b, 2e-6f)) return false;
        // Rows must sum to 1 on both backends.
        for (int r = 0; r < rows; ++r) {
          double sa = 0.0, sb = 0.0;
          for (int j = 0; j < cols; ++j) {
            sa += a.at(r, j);
            sb += b.at(r, j);
          }
          if (std::fabs(sa - 1.0) > 1e-4 || std::fabs(sb - 1.0) > 1e-4) {
            return false;
          }
        }
        return true;
      },
      DescribeVec));
}

// The startup dispatcher must honor RAPID_KERNEL_BACKEND: this test runs
// both bare (backend = whatever the host supports) and re-registered in
// ctest with RAPID_KERNEL_BACKEND=scalar, where it proves the env override
// actually forced the scalar reference kernels.
TEST(KernelDispatchTest, StartupBackendHonorsEnvironment) {
  const char* env = std::getenv("RAPID_KERNEL_BACKEND");
  const std::string choice = env == nullptr ? "" : env;
  if (choice == "scalar") {
    EXPECT_EQ(kernel::ActiveBackend(), kernel::Backend::kScalar);
  } else if (choice == "avx2") {
    if (kernel::Avx2Available()) {
      EXPECT_EQ(kernel::ActiveBackend(), kernel::Backend::kAvx2);
    }
  } else {
    EXPECT_EQ(kernel::ActiveBackend(), kernel::Avx2Available()
                                           ? kernel::Backend::kAvx2
                                           : kernel::Backend::kScalar);
  }
  EXPECT_STREQ(kernel::BackendName(kernel::Backend::kScalar), "scalar");
}

TEST(KernelDispatchTest, ScopedOverrideRestoresPreviousBackend) {
  const kernel::Backend before = kernel::ActiveBackend();
  {
    kernel::ScopedBackendOverride force(kernel::Backend::kScalar);
    EXPECT_EQ(kernel::ActiveBackend(), kernel::Backend::kScalar);
    EXPECT_EQ(force.forced(), kernel::Backend::kScalar);
  }
  EXPECT_EQ(kernel::ActiveBackend(), before);
}

}  // namespace
}  // namespace rapid::nn
