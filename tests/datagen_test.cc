#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "datagen/gmm.h"
#include "datagen/history.h"
#include "datagen/simulator.h"
#include "datagen/types.h"

namespace rapid::data {
namespace {

SimConfig SmallConfig(DatasetKind kind) {
  SimConfig cfg;
  cfg.kind = kind;
  cfg.num_users = 40;
  cfg.num_items = 300;
  cfg.history_len = 20;
  return cfg;
}

TEST(SimConfigTest, TopicCountsMatchPaperDatasets) {
  SimConfig cfg;
  cfg.kind = DatasetKind::kTaobao;
  EXPECT_EQ(cfg.num_topics(), 5);
  cfg.kind = DatasetKind::kMovieLens;
  EXPECT_EQ(cfg.num_topics(), 20);
  cfg.kind = DatasetKind::kAppStore;
  EXPECT_EQ(cfg.num_topics(), 23);
}

TEST(SimulatorTest, Deterministic) {
  const SimConfig cfg = SmallConfig(DatasetKind::kTaobao);
  Dataset a = GenerateDataset(cfg, 7);
  Dataset b = GenerateDataset(cfg, 7);
  ASSERT_EQ(a.items.size(), b.items.size());
  EXPECT_EQ(a.items[10].features, b.items[10].features);
  EXPECT_EQ(a.users[5].topic_pref, b.users[5].topic_pref);
  EXPECT_EQ(a.history[3], b.history[3]);
  Dataset c = GenerateDataset(cfg, 8);
  EXPECT_NE(a.items[10].features, c.items[10].features);
}

class AllKindsTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(AllKindsTest, StructuralInvariants) {
  const SimConfig cfg = SmallConfig(GetParam());
  Dataset data = GenerateDataset(cfg, 42);
  EXPECT_EQ(static_cast<int>(data.users.size()), cfg.num_users);
  EXPECT_EQ(static_cast<int>(data.items.size()), cfg.num_items);
  EXPECT_EQ(data.num_topics, cfg.num_topics());

  for (const Item& item : data.items) {
    ASSERT_EQ(static_cast<int>(item.topic_coverage.size()), data.num_topics);
    float sum = 0.0f, mx = 0.0f;
    for (float t : item.topic_coverage) {
      EXPECT_GE(t, 0.0f);
      EXPECT_LE(t, 1.0f);
      sum += t;
      mx = std::max(mx, t);
    }
    EXPECT_GT(mx, 0.0f) << "every item must cover some topic";
    EXPECT_NEAR(sum, 1.0f, 1e-4f) << "coverage normalized in all three sims";
  }

  for (const User& user : data.users) {
    float sum = std::accumulate(user.topic_pref.begin(),
                                user.topic_pref.end(), 0.0f);
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
    EXPECT_GE(user.diversity_appetite, 0.0f);
    EXPECT_LE(user.diversity_appetite, 1.0f);
  }

  // History: right length, valid ids, no duplicates.
  for (int u = 0; u < cfg.num_users; ++u) {
    EXPECT_EQ(static_cast<int>(data.history[u].size()), cfg.history_len);
    std::set<int> uniq(data.history[u].begin(), data.history[u].end());
    EXPECT_EQ(uniq.size(), data.history[u].size());
    for (int v : data.history[u]) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, cfg.num_items);
    }
  }

  // Requests: right counts and candidate pool sizes, unique candidates.
  EXPECT_EQ(static_cast<int>(data.rerank_train_requests.size()),
            cfg.num_users * cfg.rerank_lists_per_user);
  EXPECT_EQ(static_cast<int>(data.test_requests.size()),
            cfg.num_users * cfg.test_lists_per_user);
  for (const Request& req : data.test_requests) {
    EXPECT_EQ(static_cast<int>(req.candidates.size()),
              cfg.candidates_per_request);
    std::set<int> uniq(req.candidates.begin(), req.candidates.end());
    EXPECT_EQ(uniq.size(), req.candidates.size());
  }

  // Ranker-train interactions balanced between labels.
  int pos = 0, neg = 0;
  for (const Interaction& it : data.ranker_train) {
    (it.label ? pos : neg) += 1;
  }
  EXPECT_EQ(pos, cfg.num_users * cfg.ranker_train_pos_per_user);
  EXPECT_EQ(neg, pos);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKindsTest,
                         ::testing::Values(DatasetKind::kTaobao,
                                           DatasetKind::kMovieLens,
                                           DatasetKind::kAppStore));

TEST(SimulatorTest, AppStoreHasOneHotCoverageAndBids) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kAppStore), 1);
  for (const Item& item : data.items) {
    int nonzero = 0;
    for (float t : item.topic_coverage) {
      if (t > 0.0f) {
        ++nonzero;
        EXPECT_FLOAT_EQ(t, 1.0f);
      }
    }
    EXPECT_EQ(nonzero, 1);
    EXPECT_GT(item.bid, 0.0f);
  }
}

TEST(SimulatorTest, MovieLensCoverageIsNormalizedMultiHot) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kMovieLens), 2);
  bool saw_multi = false;
  for (const Item& item : data.items) {
    int nonzero = 0;
    float first = 0.0f;
    for (float t : item.topic_coverage) {
      if (t > 0.0f) {
        if (nonzero == 0) first = t;
        EXPECT_FLOAT_EQ(t, first) << "multi-hot weights equal";
        ++nonzero;
      }
    }
    EXPECT_GE(nonzero, 1);
    EXPECT_LE(nonzero, 3);
    if (nonzero > 1) saw_multi = true;
  }
  EXPECT_TRUE(saw_multi);
}

TEST(SimulatorTest, TaobaoCoverageIsSoft) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kTaobao), 3);
  // GMM posteriors: at least some items should have genuinely soft
  // (non-degenerate) coverage.
  int soft = 0;
  for (const Item& item : data.items) {
    int above = 0;
    for (float t : item.topic_coverage) {
      if (t > 0.05f && t < 0.95f) ++above;
    }
    if (above >= 2) ++soft;
  }
  EXPECT_GT(soft, 5);
}

TEST(SimulatorTest, RelevanceCalibration) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kTaobao), 4);
  // Mean over random pairs moderate; history items much more relevant.
  double rand_mean = 0.0;
  int n = 0;
  for (int u = 0; u < 20; ++u) {
    for (int v = 0; v < 100; ++v) {
      rand_mean += TrueRelevance(data.users[u], data.items[v]);
      ++n;
    }
  }
  rand_mean /= n;
  double hist_mean = 0.0;
  int hn = 0;
  for (int u = 0; u < 20; ++u) {
    for (int v : data.history[u]) {
      hist_mean += TrueRelevance(data.users[u], data.items[v]);
      ++hn;
    }
  }
  hist_mean /= hn;
  EXPECT_GT(rand_mean, 0.02);
  EXPECT_LT(rand_mean, 0.6);
  EXPECT_GT(hist_mean, rand_mean + 0.1)
      << "history should be visibly more relevant than random items";
}

TEST(SimulatorTest, DiversityAppetiteIsHeterogeneous) {
  SimConfig cfg = SmallConfig(DatasetKind::kMovieLens);
  cfg.num_users = 120;
  Dataset data = GenerateDataset(cfg, 5);
  int low = 0, high = 0;
  for (const User& u : data.users) {
    if (u.diversity_appetite < 0.35f) ++low;
    if (u.diversity_appetite > 0.75f) ++high;
  }
  EXPECT_GT(low, 10) << "need clearly focused users";
  EXPECT_GT(high, 10) << "need clearly diverse users";
}

TEST(CoverageTest, SingleItemMatchesItsTau) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kAppStore), 6);
  std::vector<int> list = {0};
  for (int j = 0; j < data.num_topics; ++j) {
    EXPECT_FLOAT_EQ(TopicCoverage(data, list, j),
                    data.items[0].topic_coverage[j]);
  }
}

TEST(CoverageTest, MonotoneInListLength) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kTaobao), 7);
  std::vector<int> list = {0, 1, 2, 3, 4, 5};
  for (int j = 0; j < data.num_topics; ++j) {
    float prev = 0.0f;
    for (int k = 1; k <= 6; ++k) {
      const float c = TopicCoverage(data, list, j, k);
      EXPECT_GE(c, prev - 1e-6f);
      prev = c;
    }
  }
}

TEST(CoverageTest, SubmodularDiminishingReturns) {
  // Adding an item to a superset yields no more gain than to a subset.
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kTaobao), 8);
  std::vector<int> small = {0, 1};
  std::vector<int> big = {0, 1, 2, 3};
  std::vector<int> small_plus = {0, 1, 10};
  std::vector<int> big_plus = {0, 1, 2, 3, 10};
  for (int j = 0; j < data.num_topics; ++j) {
    const float gain_small =
        TopicCoverage(data, small_plus, j) - TopicCoverage(data, small, j);
    const float gain_big =
        TopicCoverage(data, big_plus, j) - TopicCoverage(data, big, j);
    EXPECT_LE(gain_big, gain_small + 1e-6f);
  }
}

TEST(MarginalDiversityTest, MatchesDirectLeaveOneOut) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kTaobao), 9);
  std::vector<int> list = {3, 14, 15, 92, 65};
  auto md = MarginalDiversity(data, list);
  ASSERT_EQ(md.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<int> without = list;
    without.erase(without.begin() + i);
    for (int j = 0; j < data.num_topics; ++j) {
      const float expect =
          TopicCoverage(data, list, j) - TopicCoverage(data, without, j);
      EXPECT_NEAR(md[i][j], expect, 1e-5f);
    }
  }
}

TEST(MarginalDiversityTest, HandlesFullCoverageItems) {
  // One-hot items have tau exactly 1: leave-one-out must not divide by 0.
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kAppStore), 10);
  std::vector<int> list = {0, 1, 2, 3};
  auto md = MarginalDiversity(data, list);
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<int> without = list;
    without.erase(without.begin() + i);
    for (int j = 0; j < data.num_topics; ++j) {
      const float expect =
          TopicCoverage(data, list, j) - TopicCoverage(data, without, j);
      EXPECT_NEAR(md[i][j], expect, 1e-5f);
    }
  }
}

TEST(HistoryTest, TopicMembershipOneHot) {
  Item item;
  item.topic_coverage = {0.0f, 1.0f, 0.0f};
  auto topics = TopicMembership(item);
  ASSERT_EQ(topics.size(), 1u);
  EXPECT_EQ(topics[0], 1);
}

TEST(HistoryTest, TopicMembershipSoftFallsBackToArgmax) {
  Item item;
  item.topic_coverage = {0.2f, 0.15f, 0.1f, 0.24f, 0.21f};  // all < 0.25
  auto topics = TopicMembership(item);
  ASSERT_EQ(topics.size(), 1u);
  EXPECT_EQ(topics[0], 3);
}

TEST(HistoryTest, SplitRespectsMaxLenAndRecency) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kAppStore), 11);
  const int D = 3;
  auto seqs = SplitHistoryByTopic(data, 0, D);
  ASSERT_EQ(static_cast<int>(seqs.size()), data.num_topics);
  for (int j = 0; j < data.num_topics; ++j) {
    EXPECT_LE(static_cast<int>(seqs[j].size()), D);
    for (int v : seqs[j]) {
      auto topics = TopicMembership(data.item(v));
      EXPECT_TRUE(std::find(topics.begin(), topics.end(), j) != topics.end());
    }
  }
  // Every kept element appears in the original history.
  for (const auto& seq : seqs) {
    for (int v : seq) {
      EXPECT_TRUE(std::find(data.history[0].begin(), data.history[0].end(),
                            v) != data.history[0].end());
    }
  }
}

TEST(HistoryTest, TopicDistributionSumsToOne) {
  Dataset data = GenerateDataset(SmallConfig(DatasetKind::kMovieLens), 12);
  auto dist = HistoryTopicDistribution(data, 1);
  float sum = std::accumulate(dist.begin(), dist.end(), 0.0f);
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(GmmTest, RecoversWellSeparatedClusters) {
  std::mt19937_64 rng(13);
  std::normal_distribution<float> noise(0.0f, 0.3f);
  std::vector<std::vector<float>> points;
  const std::vector<std::vector<float>> centers = {
      {5.0f, 0.0f}, {-5.0f, 0.0f}, {0.0f, 5.0f}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) {
      points.push_back({centers[c][0] + noise(rng), centers[c][1] + noise(rng)});
    }
  }
  GaussianMixture gmm(3, 2);
  gmm.Fit(points, rng);
  // Every point's posterior should be confident (>0.95 on one component).
  int confident = 0;
  for (const auto& p : points) {
    auto post = gmm.Posterior(p);
    float mx = *std::max_element(post.begin(), post.end());
    if (mx > 0.95f) ++confident;
  }
  EXPECT_GT(confident, 290);
}

TEST(GmmTest, PosteriorIsDistribution) {
  std::mt19937_64 rng(14);
  std::vector<std::vector<float>> points;
  std::normal_distribution<float> n01(0.0f, 1.0f);
  for (int i = 0; i < 200; ++i) points.push_back({n01(rng), n01(rng), n01(rng)});
  GaussianMixture gmm(4, 3);
  gmm.Fit(points, rng);
  auto post = gmm.Posterior({0.5f, -0.2f, 1.0f});
  float sum = std::accumulate(post.begin(), post.end(), 0.0f);
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
  for (float p : post) EXPECT_GE(p, 0.0f);
}

TEST(GmmTest, LogLikelihoodImprovesOverIterations) {
  std::mt19937_64 rng(15);
  std::vector<std::vector<float>> points;
  std::normal_distribution<float> a(2.0f, 0.5f), b(-2.0f, 0.5f);
  for (int i = 0; i < 100; ++i) {
    points.push_back({a(rng)});
    points.push_back({b(rng)});
  }
  GaussianMixture one_iter(2, 1);
  std::mt19937_64 rng1(99);
  one_iter.Fit(points, rng1, /*max_iters=*/1);
  GaussianMixture many_iter(2, 1);
  std::mt19937_64 rng2(99);
  many_iter.Fit(points, rng2, /*max_iters=*/50);
  EXPECT_GE(many_iter.log_likelihood(), one_iter.log_likelihood() - 1e-9);
}

}  // namespace
}  // namespace rapid::data
