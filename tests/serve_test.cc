#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/request_queue.h"
#include "serve/snapshot.h"

namespace rapid {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 20;
    cfg.num_items = 120;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 101);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(2);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }

  core::RapidReranker FittedModel(core::RapidConfig cfg = SmallConfig()) {
    core::RapidReranker model(cfg);
    model.Fit(data_, train_, 6);
    return model;
  }

  static core::RapidConfig SmallConfig() {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = 8;
    return cfg;
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

TEST_F(ServeTest, SnapshotRoundTripIsBitExact) {
  const core::RapidReranker trained = FittedModel();
  const std::string path = ::testing::TempDir() + "/rapid.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));

  const auto restored = serve::Snapshot::Load(path, data_);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), trained.name());
  for (const data::ImpressionList& list : train_) {
    const std::vector<float> a = trained.ScoreList(data_, list);
    const std::vector<float> b = restored->ScoreList(data_, list);
    ASSERT_EQ(a.size(), b.size());
    // Bit-for-bit: the snapshot stores raw float words, so inference from
    // the restored model must be exactly reproducible, not just close.
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
    EXPECT_EQ(trained.Rerank(data_, list), restored->Rerank(data_, list));
  }
}

TEST_F(ServeTest, SnapshotHeaderCarriesConfig) {
  core::RapidConfig cfg = SmallConfig();
  cfg.head = core::OutputHead::kDeterministic;
  cfg.diversity_aggregator = core::DiversityAggregator::kMean;
  cfg.diversity_function = core::DiversityFunctionKind::kSaturatingLinear;
  const core::RapidReranker trained = FittedModel(cfg);
  const std::string path = ::testing::TempDir() + "/rapid_det.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));

  core::RapidConfig loaded;
  ASSERT_TRUE(serve::Snapshot::ReadConfig(path, &loaded));
  EXPECT_EQ(loaded.hidden_dim, cfg.hidden_dim);
  EXPECT_EQ(loaded.head, cfg.head);
  EXPECT_EQ(loaded.diversity_aggregator, cfg.diversity_aggregator);
  EXPECT_EQ(loaded.diversity_function, cfg.diversity_function);
  // Load reconstructs the right variant without being told the config.
  const auto restored = serve::Snapshot::Load(path, data_);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), "RAPID-mean");
}

TEST_F(ServeTest, SnapshotRejectsMismatchedDatasetAndGarbage) {
  const core::RapidReranker trained = FittedModel();
  const std::string path = ::testing::TempDir() + "/rapid_dims.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));

  data::SimConfig other_cfg;
  other_cfg.kind = data::DatasetKind::kMovieLens;  // 20 topics, not 5.
  other_cfg.num_users = 10;
  other_cfg.num_items = 80;
  const data::Dataset other = data::GenerateDataset(other_cfg, 5);
  EXPECT_EQ(serve::Snapshot::Load(path, other), nullptr);

  EXPECT_EQ(serve::Snapshot::Load("/nonexistent/m.rsnp", data_), nullptr);
  const std::string garbage = ::testing::TempDir() + "/garbage.rsnp";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a snapshot";
  }
  EXPECT_EQ(serve::Snapshot::Load(garbage, data_), nullptr);
  core::RapidConfig ignored;
  EXPECT_FALSE(serve::Snapshot::ReadConfig(garbage, &ignored));
}

TEST_F(ServeTest, EngineMatchesDirectRerankAcrossThreadCounts) {
  const core::RapidReranker model = FittedModel();
  std::vector<std::vector<int>> reference;
  reference.reserve(train_.size());
  for (const auto& list : train_) {
    reference.push_back(model.Rerank(data_, list));
  }

  for (int threads : {1, 4}) {
    serve::ServingConfig cfg;
    cfg.num_threads = threads;
    cfg.max_batch = 3;
    cfg.max_wait_us = 50;
    serve::ServingEngine engine(data_, model, cfg);
    std::vector<std::future<serve::RerankResponse>> futures;
    for (const auto& list : train_) futures.push_back(engine.Submit(list));
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::RerankResponse response = futures[i].get();
      EXPECT_FALSE(response.degraded);
      EXPECT_EQ(response.items, reference[i]);
      EXPECT_GE(response.latency_us, 0);
    }
    const serve::ServingStats stats = engine.stats();
    EXPECT_EQ(stats.requests, train_.size());
    EXPECT_EQ(stats.fallbacks, 0u);
  }
}

TEST_F(ServeTest, ConcurrentSubmittersGetConsistentResults) {
  const core::RapidReranker model = FittedModel();
  std::vector<std::vector<int>> reference;
  for (const auto& list : train_) {
    reference.push_back(model.Rerank(data_, list));
  }

  serve::ServingConfig cfg;
  cfg.num_threads = 4;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100;
  cfg.queue_capacity = 8;  // Small: exercises producer backpressure.
  serve::ServingEngine engine(data_, model, cfg);

  constexpr int kSubmitters = 4;
  constexpr int kRoundsPerSubmitter = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < kRoundsPerSubmitter; ++round) {
        const size_t idx = (s + round * kSubmitters) % train_.size();
        auto future = engine.Submit(train_[idx]);
        if (future.get().items != reference[idx]) ++mismatches;
      }
    });
  }
  for (auto& t : submitters) t.join();
  engine.Shutdown();

  EXPECT_EQ(mismatches.load(), 0);
  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kSubmitters * kRoundsPerSubmitter));
  EXPECT_GE(stats.max_queue_depth, 1);
  EXPECT_GT(stats.p50_us, 0.0);
  EXPECT_LE(stats.p50_us, stats.p99_us);
}

TEST_F(ServeTest, ExpiredDeadlineFallsBackToHeuristic) {
  const core::RapidReranker model = FittedModel();
  serve::ServingConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.deadline_us = 1;  // Unmeetable: queue wait alone exceeds it.
  cfg.fallback = serve::FallbackPolicy::kInitialOrder;
  serve::ServingEngine engine(data_, model, cfg);

  std::vector<std::future<serve::RerankResponse>> futures;
  for (const auto& list : train_) futures.push_back(engine.Submit(list));
  uint64_t degraded = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::RerankResponse response = futures[i].get();
    if (response.degraded) {
      ++degraded;
      // kInitialOrder serves the initial ranking unchanged.
      EXPECT_EQ(response.items, train_[i].items);
    }
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(engine.stats().fallbacks, degraded);
}

TEST_F(ServeTest, SubmitAfterShutdownServesInline) {
  const core::RapidReranker model = FittedModel();
  serve::ServingEngine engine(data_, model, {});
  engine.Shutdown();
  auto future = engine.Submit(train_[0]);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get().items, model.Rerank(data_, train_[0]));
}

TEST(RequestQueueTest, PopBatchCollectsUpToMaxAndDrainsOnClose) {
  serve::BoundedRequestQueue<int> queue(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(std::move(i)));
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(3, std::chrono::microseconds(0), &batch), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  queue.Close();
  EXPECT_EQ(queue.PopBatch(8, std::chrono::microseconds(0), &batch), 2u);
  EXPECT_EQ(batch.size(), 5u);
  // Closed and drained: returns 0 instead of blocking; Push refuses.
  EXPECT_EQ(queue.PopBatch(8, std::chrono::microseconds(0), &batch), 0u);
  int rejected = 7;
  EXPECT_FALSE(queue.Push(std::move(rejected)));
}

TEST(ServingMetricsTest, PercentilesAndCountersTrackRecordings) {
  serve::ServingMetrics metrics;
  for (uint64_t us = 1; us <= 100; ++us) {
    metrics.RecordRequest(us, /*fallback=*/us > 98);
  }
  metrics.RecordQueueDepth(3);
  metrics.RecordQueueDepth(9);
  metrics.RecordQueueDepth(4);
  const serve::ServingStats stats = metrics.Snapshot();
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_EQ(stats.fallbacks, 2u);
  EXPECT_EQ(stats.max_us, 100u);
  EXPECT_EQ(stats.max_queue_depth, 9);
  EXPECT_NEAR(stats.mean_us, 50.5, 1e-9);
  // Log-bucketed estimates: within one ~12.5% bucket of the true value.
  EXPECT_NEAR(stats.p50_us, 50.0, 50.0 * 0.13);
  EXPECT_NEAR(stats.p95_us, 95.0, 95.0 * 0.13);
  EXPECT_NEAR(stats.p99_us, 99.0, 99.0 * 0.13);
  EXPECT_NE(stats.ToJson().find("\"requests\": 100"), std::string::npos);
  EXPECT_NE(stats.ToTable().find("fallbacks"), std::string::npos);
}

}  // namespace
}  // namespace rapid
