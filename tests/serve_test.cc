#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "rerank/neural_models.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/request_queue.h"
#include "serve/snapshot.h"

namespace rapid {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 20;
    cfg.num_items = 120;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 101);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(2);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }

  core::RapidReranker FittedModel(core::RapidConfig cfg = SmallConfig()) {
    core::RapidReranker model(cfg);
    model.Fit(data_, train_, 6);
    return model;
  }

  static core::RapidConfig SmallConfig() {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = 8;
    return cfg;
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

TEST_F(ServeTest, SnapshotRoundTripIsBitExact) {
  const core::RapidReranker trained = FittedModel();
  const std::string path = ::testing::TempDir() + "/rapid.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));

  const auto restored = serve::Snapshot::Load(path, data_);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), trained.name());
  for (const data::ImpressionList& list : train_) {
    const std::vector<float> a = trained.ScoreList(data_, list);
    const std::vector<float> b = restored->ScoreList(data_, list);
    ASSERT_EQ(a.size(), b.size());
    // Bit-for-bit: the snapshot stores raw float words, so inference from
    // the restored model must be exactly reproducible, not just close.
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
    EXPECT_EQ(trained.Rerank(data_, list), restored->Rerank(data_, list));
  }
}

TEST_F(ServeTest, SnapshotHeaderCarriesConfig) {
  core::RapidConfig cfg = SmallConfig();
  cfg.head = core::OutputHead::kDeterministic;
  cfg.diversity_aggregator = core::DiversityAggregator::kMean;
  cfg.diversity_function = core::DiversityFunctionKind::kSaturatingLinear;
  const core::RapidReranker trained = FittedModel(cfg);
  const std::string path = ::testing::TempDir() + "/rapid_det.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));

  core::RapidConfig loaded;
  ASSERT_TRUE(serve::Snapshot::ReadConfig(path, &loaded));
  EXPECT_EQ(loaded.hidden_dim, cfg.hidden_dim);
  EXPECT_EQ(loaded.head, cfg.head);
  EXPECT_EQ(loaded.diversity_aggregator, cfg.diversity_aggregator);
  EXPECT_EQ(loaded.diversity_function, cfg.diversity_function);
  // Load reconstructs the right variant without being told the config.
  const auto restored = serve::Snapshot::Load(path, data_);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), "RAPID-mean");
}

TEST_F(ServeTest, SnapshotRejectsMismatchedDatasetAndGarbage) {
  const core::RapidReranker trained = FittedModel();
  const std::string path = ::testing::TempDir() + "/rapid_dims.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));

  data::SimConfig other_cfg;
  other_cfg.kind = data::DatasetKind::kMovieLens;  // 20 topics, not 5.
  other_cfg.num_users = 10;
  other_cfg.num_items = 80;
  const data::Dataset other = data::GenerateDataset(other_cfg, 5);
  EXPECT_EQ(serve::Snapshot::Load(path, other), nullptr);

  EXPECT_EQ(serve::Snapshot::Load("/nonexistent/m.rsnp", data_), nullptr);
  const std::string garbage = ::testing::TempDir() + "/garbage.rsnp";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a snapshot";
  }
  EXPECT_EQ(serve::Snapshot::Load(garbage, data_), nullptr);
  core::RapidConfig ignored;
  EXPECT_FALSE(serve::Snapshot::ReadConfig(garbage, &ignored));
}

TEST_F(ServeTest, EngineMatchesDirectRerankAcrossThreadCounts) {
  const core::RapidReranker model = FittedModel();
  std::vector<std::vector<int>> reference;
  reference.reserve(train_.size());
  for (const auto& list : train_) {
    reference.push_back(model.Rerank(data_, list));
  }

  for (int threads : {1, 4}) {
    serve::ServingConfig cfg;
    cfg.num_threads = threads;
    cfg.max_batch = 3;
    cfg.max_wait_us = 50;
    serve::ServingEngine engine(data_, model, cfg);
    std::vector<std::future<serve::RerankResponse>> futures;
    for (const auto& list : train_) futures.push_back(engine.Submit(list));
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::RerankResponse response = futures[i].get();
      EXPECT_FALSE(response.degraded);
      EXPECT_EQ(response.items, reference[i]);
      EXPECT_GE(response.latency_us, 0);
    }
    const serve::ServingStats stats = engine.stats();
    EXPECT_EQ(stats.requests, train_.size());
    EXPECT_EQ(stats.fallbacks, 0u);
  }
}

TEST_F(ServeTest, ConcurrentSubmittersGetConsistentResults) {
  const core::RapidReranker model = FittedModel();
  std::vector<std::vector<int>> reference;
  for (const auto& list : train_) {
    reference.push_back(model.Rerank(data_, list));
  }

  serve::ServingConfig cfg;
  cfg.num_threads = 4;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100;
  cfg.queue_capacity = 8;  // Small: exercises producer backpressure.
  serve::ServingEngine engine(data_, model, cfg);

  constexpr int kSubmitters = 4;
  constexpr int kRoundsPerSubmitter = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < kRoundsPerSubmitter; ++round) {
        const size_t idx = (s + round * kSubmitters) % train_.size();
        auto future = engine.Submit(train_[idx]);
        if (future.get().items != reference[idx]) ++mismatches;
      }
    });
  }
  for (auto& t : submitters) t.join();
  engine.Shutdown();

  EXPECT_EQ(mismatches.load(), 0);
  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kSubmitters * kRoundsPerSubmitter));
  EXPECT_GE(stats.max_queue_depth, 1);
  EXPECT_GT(stats.p50_us, 0.0);
  EXPECT_LE(stats.p50_us, stats.p99_us);
}

TEST_F(ServeTest, ExpiredDeadlineFallsBackToHeuristic) {
  const core::RapidReranker model = FittedModel();
  serve::ServingConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.deadline_us = 1;  // Unmeetable: queue wait alone exceeds it.
  cfg.fallback = serve::FallbackPolicy::kInitialOrder;
  serve::ServingEngine engine(data_, model, cfg);

  std::vector<std::future<serve::RerankResponse>> futures;
  for (const auto& list : train_) futures.push_back(engine.Submit(list));
  uint64_t degraded = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::RerankResponse response = futures[i].get();
    if (response.degraded) {
      ++degraded;
      // kInitialOrder serves the initial ranking unchanged.
      EXPECT_EQ(response.items, train_[i].items);
    }
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(engine.stats().fallbacks, degraded);
}

TEST_F(ServeTest, SubmitAfterShutdownServesInline) {
  const core::RapidReranker model = FittedModel();
  serve::ServingEngine engine(data_, model, {});
  engine.Shutdown();
  auto future = engine.Submit(train_[0]);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get().items, model.Rerank(data_, train_[0]));
}

// A re-ranker with a fixed per-request cost, used to hold the engine's
// queue full long enough to exercise TrySubmit / bounded-blocking paths.
class StallInitReranker : public rerank::Reranker {
 public:
  explicit StallInitReranker(int stall_us) : stall_us_(stall_us) {}
  std::string name() const override { return "StallInit"; }
  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    return list.items;
  }

 private:
  const int stall_us_;
};

TEST_F(ServeTest, TrySubmitRejectsWhenFullWithoutBlocking) {
  const StallInitReranker slow(20'000);
  serve::ServingConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 1;
  serve::ServingEngine engine(data_, slow, cfg);

  // Saturate: one request occupies the worker, then fill the queue slot.
  std::vector<std::future<serve::RerankResponse>> accepted;
  accepted.push_back(engine.Submit(train_[0]));
  bool saw_rejection = false;
  for (int i = 0; i < 64 && !saw_rejection; ++i) {
    auto maybe = engine.TrySubmit(train_[0]);
    if (maybe.has_value()) {
      accepted.push_back(std::move(*maybe));
    } else {
      saw_rejection = true;  // Full queue reported immediately, no block.
    }
  }
  EXPECT_TRUE(saw_rejection);
  for (auto& f : accepted) EXPECT_EQ(f.get().items, train_[0].items);
  engine.Shutdown();

  // After shutdown TrySubmit serves inline like Submit.
  auto inline_future = engine.TrySubmit(train_[1]);
  ASSERT_TRUE(inline_future.has_value());
  ASSERT_EQ(inline_future->wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(inline_future->get().items, train_[1].items);
}

TEST_F(ServeTest, SubmitBlocksAtMostTheRequestDeadline) {
  const StallInitReranker slow(30'000);
  serve::ServingConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 1;
  cfg.deadline_us = 10'000;
  cfg.fallback = serve::FallbackPolicy::kInitialOrder;
  serve::ServingEngine engine(data_, slow, cfg);

  std::vector<std::future<serve::RerankResponse>> futures;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) futures.push_back(engine.Submit(train_[0]));
  const double submit_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  uint64_t degraded = 0;
  for (auto& f : futures) degraded += f.get().degraded ? 1 : 0;
  engine.Shutdown();

  // Pre-fix, each blocked Submit waited a full 30ms model pass (~90ms for
  // the burst); now every Submit returns within its own 10ms deadline.
  EXPECT_LT(submit_ms, 100.0);
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(engine.stats().fallbacks, degraded);
}

TEST(RequestQueueTest, PopBatchCollectsUpToMaxAndDrainsOnClose) {
  serve::BoundedRequestQueue<int> queue(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(std::move(i)));
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(3, std::chrono::microseconds(0), &batch), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  queue.Close();
  EXPECT_EQ(queue.PopBatch(8, std::chrono::microseconds(0), &batch), 2u);
  EXPECT_EQ(batch.size(), 5u);
  // Closed and drained: returns 0 instead of blocking; Push refuses.
  EXPECT_EQ(queue.PopBatch(8, std::chrono::microseconds(0), &batch), 0u);
  int rejected = 7;
  EXPECT_FALSE(queue.Push(std::move(rejected)));
}

TEST(RequestQueueTest, CapacityOneAlternatesAndReportsFull) {
  using Queue = serve::BoundedRequestQueue<int>;
  Queue queue(1);
  EXPECT_EQ(queue.TryPush(1), Queue::PushResult::kOk);
  EXPECT_EQ(queue.TryPush(2), Queue::PushResult::kFull);
  EXPECT_EQ(queue.PushUntil(2, std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(1)),
            Queue::PushResult::kFull);

  // A blocked producer is released as soon as the consumer pops.
  std::thread producer([&queue] { EXPECT_TRUE(queue.Push(2)); });
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(1, std::chrono::microseconds(0), &batch), 1u);
  producer.join();
  EXPECT_EQ(queue.PopBatch(1, std::chrono::microseconds(0), &batch), 1u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));

  queue.Close();
  EXPECT_EQ(queue.TryPush(3), Queue::PushResult::kClosed);
}

TEST(RequestQueueTest, CloseReleasesBlockedProducersWithItemsIntact) {
  using Queue = serve::BoundedRequestQueue<std::unique_ptr<int>>;
  Queue queue(1);
  ASSERT_EQ(queue.TryPush(std::make_unique<int>(0)), Queue::PushResult::kOk);

  constexpr int kProducers = 3;
  std::atomic<int> refused{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&queue, &refused, i] {
      auto item = std::make_unique<int>(i + 1);
      if (!queue.Push(std::move(item))) {
        // Push refused without consuming: the caller can still serve it.
        ASSERT_NE(item, nullptr);
        ++refused;
      }
    });
  }
  // Let the producers reach the full-queue wait, then close underneath
  // them.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(refused.load(), kProducers);

  // The pre-close item is still drainable.
  std::vector<std::unique_ptr<int>> batch;
  EXPECT_EQ(queue.PopBatch(4, std::chrono::microseconds(0), &batch), 1u);
  EXPECT_EQ(*batch[0], 0);
}

TEST(RequestQueueTest, PriorityDrainIsStarvationFree) {
  // Two lanes, yield to the starved lane after 2 consecutive bypasses.
  serve::BoundedRequestQueue<int> queue(32, /*num_lanes=*/2,
                                        /*bursts_per_yield=*/2);
  for (int i = 1; i <= 6; ++i) ASSERT_TRUE(queue.Push(100 + i, /*lane=*/0));
  for (int i = 1; i <= 3; ++i) ASSERT_TRUE(queue.Push(200 + i, /*lane=*/1));
  EXPECT_EQ(queue.lane_size(0), 6u);
  EXPECT_EQ(queue.lane_size(1), 3u);

  std::vector<int> order;
  while (queue.size() > 0) {
    queue.PopBatch(1, std::chrono::microseconds(0), &order);
  }
  // High lane first, but every third pop yields to the waiting low lane;
  // once the high lane drains, the low remainder flows FIFO.
  EXPECT_EQ(order, (std::vector<int>{101, 102, 201, 103, 104, 202, 105, 106,
                                     203}));
}

TEST(RequestQueueTest, SingleLaneDrainStaysFifo) {
  serve::BoundedRequestQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(std::move(i)));
  std::vector<int> order;
  queue.PopBatch(5, std::chrono::microseconds(0), &order);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(ServeTest, ReadConfigRejectsTruncatedAndCorruptFiles) {
  const core::RapidReranker trained = FittedModel();
  const std::string path = ::testing::TempDir() + "/rapid_trunc.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 100u);

  const std::string cut = ::testing::TempDir() + "/rapid_cut.rsnp";
  core::RapidConfig config;
  // Truncations inside magic/version/family/header: header read fails.
  for (size_t size : {size_t{0}, size_t{2}, size_t{6}, size_t{10}, size_t{40},
                      size_t{70}}) {
    std::ofstream(cut, std::ios::binary).write(bytes.data(), size);
    EXPECT_FALSE(serve::Snapshot::ReadConfig(cut, &config)) << size;
    EXPECT_EQ(serve::Snapshot::Load(cut, data_), nullptr) << size;
  }
  // Truncation inside the weight blob: the header still reads, the model
  // does not.
  std::ofstream(cut, std::ios::binary).write(bytes.data(), 100);
  EXPECT_TRUE(serve::Snapshot::ReadConfig(cut, &config));
  EXPECT_EQ(serve::Snapshot::Load(cut, data_), nullptr);

  // Wrong magic and absurd version numbers.
  std::string wrong = bytes;
  wrong[0] = 'X';
  std::ofstream(cut, std::ios::binary).write(wrong.data(), wrong.size());
  EXPECT_FALSE(serve::Snapshot::ReadConfig(cut, &config));
  wrong = bytes;
  wrong[4] = 99;
  std::ofstream(cut, std::ios::binary).write(wrong.data(), wrong.size());
  EXPECT_FALSE(serve::Snapshot::ReadConfig(cut, &config));
  EXPECT_EQ(serve::Snapshot::LoadAny(cut, data_), nullptr);
}

TEST_F(ServeTest, V1SnapshotsStillLoadAsRapid) {
  const core::RapidReranker trained = FittedModel();
  const std::string path = ::testing::TempDir() + "/rapid_v2.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  // Rewrite as the v1 layout: magic, version=1, header — no family tag
  // (v2 inserts the 4-byte tag right after the version word).
  const std::string v1_path = ::testing::TempDir() + "/rapid_v1.rsnp";
  {
    std::ofstream out(v1_path, std::ios::binary);
    const uint32_t version = 1;
    out.write(bytes.data(), 4);  // magic
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(bytes.data() + 12, bytes.size() - 12);  // skip v2 tag
  }

  serve::SnapshotInfo info;
  ASSERT_TRUE(serve::Snapshot::ReadInfo(v1_path, &info));
  EXPECT_EQ(info.format_version, 1u);
  EXPECT_EQ(info.family, serve::SnapshotFamily::kRapid);

  const auto restored = serve::Snapshot::Load(v1_path, data_);
  ASSERT_NE(restored, nullptr);
  const std::vector<float> a = trained.ScoreList(data_, train_[0]);
  const std::vector<float> b = restored->ScoreList(data_, train_[0]);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

TEST_F(ServeTest, SaveAutoRecordsCanaryProbeReadableFromTrailer) {
  const core::RapidReranker trained = FittedModel();
  const std::string path = ::testing::TempDir() + "/rapid_canary.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(path, trained, data_));

  serve::CanaryProbe probe;
  ASSERT_TRUE(serve::Snapshot::ReadCanary(path, &probe));
  ASSERT_FALSE(probe.list.items.empty());
  ASSERT_EQ(probe.list.items.size(), probe.list.scores.size());
  ASSERT_EQ(probe.list.items.size(), probe.expected_scores.size());
  // The recorded scores are exactly the saved model's forward pass on the
  // recorded list — what LoadSlot replays against a candidate snapshot.
  const std::vector<float> replay = trained.ScoreList(data_, probe.list);
  EXPECT_EQ(0, std::memcmp(replay.data(), probe.expected_scores.data(),
                           replay.size() * sizeof(float)));

  // A v1-style rewrite has no trailer to find: ReadCanary refuses before
  // ever touching the file end.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  const std::string v1_path = ::testing::TempDir() + "/rapid_canary_v1.rsnp";
  {
    std::ofstream out(v1_path, std::ios::binary);
    const uint32_t version = 1;
    out.write(bytes.data(), 4);  // magic
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(bytes.data() + 12, bytes.size() - 12);  // skip family tag
  }
  serve::CanaryProbe ignored;
  EXPECT_FALSE(serve::Snapshot::ReadCanary(v1_path, &ignored));
  EXPECT_NE(serve::Snapshot::Load(v1_path, data_), nullptr);

  // A corrupted trailer footer makes the probe unreadable, not the
  // snapshot unloadable.
  std::string torn = bytes;
  torn.back() = static_cast<char>(torn.back() ^ 0xFF);
  const std::string torn_path = ::testing::TempDir() + "/rapid_canary_t.rsnp";
  std::ofstream(torn_path, std::ios::binary)
      .write(torn.data(), static_cast<std::streamsize>(torn.size()));
  EXPECT_FALSE(serve::Snapshot::ReadCanary(torn_path, &ignored));
  EXPECT_NE(serve::Snapshot::Load(torn_path, data_), nullptr);
}

TEST_F(ServeTest, FamilyTaggedSnapshotRoundTripsBaselines) {
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  rerank::PrmReranker prm(cfg);
  prm.Fit(data_, train_, 11);

  const std::string path = ::testing::TempDir() + "/prm.rsnp";
  ASSERT_TRUE(
      serve::Snapshot::Save(path, prm, serve::SnapshotFamily::kPrm, data_));

  serve::SnapshotInfo info;
  ASSERT_TRUE(serve::Snapshot::ReadInfo(path, &info));
  EXPECT_EQ(info.family, serve::SnapshotFamily::kPrm);
  EXPECT_EQ(info.format_version, 3u);
  EXPECT_EQ(info.config.train.hidden_dim, 8);
  EXPECT_STREQ(serve::SnapshotFamilyName(info.family), "PRM");

  // The RAPID-only loader refuses; the family dispatcher reconstructs the
  // right class with bit-exact scores.
  EXPECT_EQ(serve::Snapshot::Load(path, data_), nullptr);
  const auto restored = serve::Snapshot::LoadAny(path, data_);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), "PRM");
  for (const data::ImpressionList& list : train_) {
    const std::vector<float> a = prm.ScoreList(data_, list);
    const std::vector<float> b = restored->ScoreList(data_, list);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
  }

  // Tagging a non-RAPID model as kRapid is refused at save time, and a
  // RAPID model through the generic path keeps its full header.
  EXPECT_FALSE(
      serve::Snapshot::Save(path, prm, serve::SnapshotFamily::kRapid, data_));
  const core::RapidReranker rapid = FittedModel();
  const std::string rapid_path = ::testing::TempDir() + "/rapid_gen.rsnp";
  ASSERT_TRUE(serve::Snapshot::Save(rapid_path, rapid,
                                    serve::SnapshotFamily::kRapid, data_));
  const auto rapid_restored = serve::Snapshot::LoadAny(rapid_path, data_);
  ASSERT_NE(rapid_restored, nullptr);
  EXPECT_EQ(rapid_restored->name(), rapid.name());
}

TEST(ServingMetricsTest, PercentilesAndCountersTrackRecordings) {
  serve::ServingMetrics metrics;
  for (uint64_t us = 1; us <= 100; ++us) {
    metrics.RecordRequest(us, /*fallback=*/us > 98);
  }
  metrics.RecordQueueDepth(3);
  metrics.RecordQueueDepth(9);
  metrics.RecordQueueDepth(4);
  const serve::ServingStats stats = metrics.Snapshot();
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_EQ(stats.fallbacks, 2u);
  EXPECT_EQ(stats.max_us, 100u);
  EXPECT_EQ(stats.max_queue_depth, 9);
  EXPECT_NEAR(stats.mean_us, 50.5, 1e-9);
  // Log-bucketed estimates: within one ~12.5% bucket of the true value.
  EXPECT_NEAR(stats.p50_us, 50.0, 50.0 * 0.13);
  EXPECT_NEAR(stats.p95_us, 95.0, 95.0 * 0.13);
  EXPECT_NEAR(stats.p99_us, 99.0, 99.0 * 0.13);
  EXPECT_NE(stats.ToJson().find("\"requests\": 100"), std::string::npos);
  EXPECT_NE(stats.ToTable().find("fallbacks"), std::string::npos);
}

}  // namespace
}  // namespace rapid
