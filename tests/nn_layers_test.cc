#include "nn/layers.h"

#include <gtest/gtest.h>

#include <random>

#include "nn/gradcheck.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace rapid::nn {
namespace {

TEST(LinearTest, ShapesAndForward) {
  std::mt19937_64 rng(1);
  Linear l(3, 2, rng);
  Variable x = Variable::Constant(Matrix::Randn(5, 3, 1.0f, rng));
  Variable y = l.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
  EXPECT_EQ(l.NumParams(), 3 * 2 + 2);
}

TEST(LinearTest, GradCheck) {
  std::mt19937_64 rng(2);
  Linear l(4, 3, rng, Activation::kTanh);
  Variable x = Variable::Constant(Matrix::Randn(2, 4, 1.0f, rng));
  GradCheckResult r = CheckGradients(
      [&] { return SumAll(Square(l.Forward(x))); }, l.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(MlpTest, DepthAndParamCount) {
  std::mt19937_64 rng(3);
  Mlp mlp({8, 16, 4, 1}, rng);
  EXPECT_EQ(mlp.NumParams(), (8 * 16 + 16) + (16 * 4 + 4) + (4 * 1 + 1));
  Variable x = Variable::Constant(Matrix::Randn(3, 8, 1.0f, rng));
  Variable y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 1);
}

TEST(MlpTest, GradCheck) {
  std::mt19937_64 rng(4);
  Mlp mlp({3, 6, 2}, rng, Activation::kTanh, Activation::kIdentity);
  Variable x = Variable::Constant(Matrix::Randn(2, 3, 1.0f, rng));
  GradCheckResult r = CheckGradients(
      [&] { return MeanAll(Square(mlp.Forward(x))); }, mlp.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(MlpTest, CanFitXor) {
  std::mt19937_64 rng(5);
  Mlp mlp({2, 8, 1}, rng, Activation::kTanh);
  Matrix xs(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  Matrix ys(4, 1, {0, 1, 1, 0});
  Matrix w = Matrix::Constant(4, 1, 1.0f);
  Adam opt(mlp.Params(), 0.05f);
  float final_loss = 1.0f;
  for (int step = 0; step < 400; ++step) {
    opt.ZeroGrad();
    Variable logits = mlp.Forward(Variable::Constant(xs));
    Variable loss = BceWithLogits(logits, ys, w);
    loss.Backward();
    opt.Step();
    final_loss = loss.value().at(0, 0);
  }
  EXPECT_LT(final_loss, 0.05f);
}

TEST(LstmCellTest, StateShapes) {
  std::mt19937_64 rng(6);
  LstmCell cell(5, 7, rng);
  Variable x = Variable::Constant(Matrix::Randn(3, 5, 1.0f, rng));
  Variable h = Variable::Constant(Matrix(3, 7));
  Variable c = Variable::Constant(Matrix(3, 7));
  auto [h2, c2] = cell.Forward(x, h, c);
  EXPECT_EQ(h2.rows(), 3);
  EXPECT_EQ(h2.cols(), 7);
  EXPECT_EQ(c2.cols(), 7);
  // Hidden state bounded by tanh output times sigmoid gate.
  EXPECT_LE(h2.value().MaxAbs(), 1.0f);
}

TEST(LstmCellTest, ForgetBiasInitializedToOne) {
  std::mt19937_64 rng(6);
  LstmCell cell(2, 3, rng);
  const Variable& b = cell.Params()[2];
  for (int c = 3; c < 6; ++c) EXPECT_FLOAT_EQ(b.value().at(0, c), 1.0f);
  EXPECT_FLOAT_EQ(b.value().at(0, 0), 0.0f);
}

TEST(LstmTest, SequenceGradCheck) {
  std::mt19937_64 rng(7);
  Lstm lstm(3, 4, rng);
  std::vector<Variable> inputs;
  for (int t = 0; t < 3; ++t) {
    inputs.push_back(Variable::Constant(Matrix::Randn(2, 3, 1.0f, rng)));
  }
  GradCheckResult r = CheckGradients(
      [&] { return SumAll(Square(lstm.ForwardLast(inputs))); },
      lstm.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(LstmTest, MaskedStepKeepsState) {
  std::mt19937_64 rng(8);
  Lstm lstm(2, 3, rng);
  Variable x1 = Variable::Constant(Matrix::Randn(1, 2, 1.0f, rng));
  Variable x2 = Variable::Constant(Matrix::Randn(1, 2, 1.0f, rng));
  Variable on = Variable::Constant(Matrix::Constant(1, 1, 1.0f));
  Variable off = Variable::Constant(Matrix(1, 1));
  // With the second step masked out the state must equal the 1-step state.
  auto states = lstm.Forward({x1, x2}, {on, off});
  auto one_step = lstm.Forward({x1}, {on});
  EXPECT_TRUE(
      states.back().value().AllClose(one_step.back().value(), 1e-6f));
}

TEST(LstmTest, MaskedGradCheck) {
  std::mt19937_64 rng(17);
  Lstm lstm(2, 3, rng);
  std::vector<Variable> inputs, masks;
  for (int t = 0; t < 3; ++t) {
    inputs.push_back(Variable::Constant(Matrix::Randn(2, 2, 1.0f, rng)));
    Matrix m(2, 1);
    m.at(0, 0) = 1.0f;
    m.at(1, 0) = (t < 2) ? 1.0f : 0.0f;
    masks.push_back(Variable::Constant(m));
  }
  GradCheckResult r = CheckGradients(
      [&] { return SumAll(Square(lstm.ForwardLast(inputs, masks))); },
      lstm.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(BiLstmTest, OutputConcatenatesBothDirections) {
  std::mt19937_64 rng(9);
  BiLstm bi(3, 4, rng);
  std::vector<Variable> inputs;
  for (int t = 0; t < 5; ++t) {
    inputs.push_back(Variable::Constant(Matrix::Randn(2, 3, 1.0f, rng)));
  }
  auto out = bi.Forward(inputs);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].cols(), 8);
  EXPECT_EQ(out[0].rows(), 2);
}

TEST(BiLstmTest, GradCheck) {
  std::mt19937_64 rng(10);
  BiLstm bi(2, 3, rng);
  std::vector<Variable> inputs;
  for (int t = 0; t < 3; ++t) {
    inputs.push_back(Variable::Constant(Matrix::Randn(1, 2, 1.0f, rng)));
  }
  GradCheckResult r = CheckGradients(
      [&] {
        auto states = bi.Forward(inputs);
        return SumAll(Square(ConcatRows(states)));
      },
      bi.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(GruCellTest, GradCheckAndShapes) {
  std::mt19937_64 rng(11);
  GruCell cell(3, 4, rng);
  Variable x = Variable::Constant(Matrix::Randn(2, 3, 1.0f, rng));
  Variable h0 = Variable::Constant(Matrix(2, 4));
  Variable h1 = cell.Forward(x, h0);
  EXPECT_EQ(h1.cols(), 4);
  GradCheckResult r = CheckGradients(
      [&] { return SumAll(Square(cell.Forward(x, h0))); }, cell.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(SelfAttentionTest, UnprojectedRowsAreConvexCombinations) {
  std::mt19937_64 rng(12);
  Variable v = Variable::Constant(Matrix::Constant(4, 3, 2.0f));
  // All rows identical -> attention output equals the input rows.
  Matrix out = UnprojectedSelfAttention(v).value();
  EXPECT_TRUE(out.AllClose(v.value(), 1e-5f));
}

TEST(SelfAttentionTest, UnprojectedGradCheck) {
  std::mt19937_64 rng(13);
  Variable v = Variable::Parameter(Matrix::Randn(3, 4, 0.7f, rng));
  GradCheckResult r = CheckGradients(
      [&] { return SumAll(Square(UnprojectedSelfAttention(v))); }, {v});
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(MultiHeadAttentionTest, ShapeAndGradCheck) {
  std::mt19937_64 rng(14);
  MultiHeadAttention mha(8, 2, rng);
  Variable x = Variable::Constant(Matrix::Randn(5, 8, 0.7f, rng));
  Variable y = mha.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
  GradCheckResult r = CheckGradients(
      [&] { return MeanAll(Square(mha.Forward(x))); }, mha.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(TransformerTest, EncoderLayerGradCheck) {
  std::mt19937_64 rng(15);
  TransformerEncoderLayer enc(8, 2, 16, rng);
  Variable x = Variable::Constant(Matrix::Randn(4, 8, 0.7f, rng));
  Variable y = enc.Forward(x);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 8);
  GradCheckResult r = CheckGradients(
      [&] { return MeanAll(Square(enc.Forward(x))); }, enc.Params());
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST(PositionalEncodingTest, ValuesBoundedAndDistinct) {
  Matrix pe = SinusoidalPositionalEncoding(10, 8);
  EXPECT_EQ(pe.rows(), 10);
  EXPECT_EQ(pe.cols(), 8);
  EXPECT_LE(pe.MaxAbs(), 1.0f);
  // Different positions produce different encodings.
  bool differ = false;
  for (int c = 0; c < 8; ++c) {
    if (pe.at(0, c) != pe.at(5, c)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Variable p = Variable::Parameter(Matrix(1, 1, {5.0f}));
  Sgd opt({p}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Variable loss = MeanAll(Square(p));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(p.value().at(0, 0), 0.0f, 1e-3f);
}

TEST(OptimizerTest, AdamConvergesOnLinearRegression) {
  std::mt19937_64 rng(16);
  Matrix x = Matrix::Randn(32, 3, 1.0f, rng);
  Matrix true_w(3, 1, {1.0f, -2.0f, 0.5f});
  Matrix y;
  Gemm(x, true_w, &y);
  Variable w = Variable::Parameter(Matrix(3, 1));
  Adam opt({w}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    Variable pred = MatMul(Variable::Constant(x), w);
    Variable loss = MseLoss(pred, y);
    loss.Backward();
    opt.Step();
  }
  EXPECT_TRUE(w.value().AllClose(true_w, 0.02f));
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Variable p = Variable::Parameter(Matrix(1, 2, {0, 0}));
  p.mutable_grad().at(0, 0) = 3.0f;
  p.mutable_grad().at(0, 1) = 4.0f;  // norm 5
  const float pre = ClipGradNorm({p}, 1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(p.grad().at(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(p.grad().at(0, 1), 0.8f, 1e-5f);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradients) {
  Variable p = Variable::Parameter(Matrix(1, 1, {0.0f}));
  p.mutable_grad().at(0, 0) = 0.5f;
  ClipGradNorm({p}, 1.0f);
  EXPECT_FLOAT_EQ(p.grad().at(0, 0), 0.5f);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  std::mt19937_64 rng(20);
  Mlp a({4, 8, 2}, rng);
  Mlp b({4, 8, 2}, rng);  // Different random init.
  const std::string path = ::testing::TempDir() + "/params.bin";
  ASSERT_TRUE(SaveParams(path, a.Params()));
  std::vector<Variable> bp = b.Params();
  ASSERT_TRUE(LoadParams(path, &bp));
  auto ap = a.Params();
  for (size_t i = 0; i < ap.size(); ++i) {
    EXPECT_TRUE(ap[i].value().Equals(bp[i].value()));
  }
}

TEST(SerializeTest, ShapeMismatchFails) {
  std::mt19937_64 rng(21);
  Mlp a({4, 8, 2}, rng);
  Mlp b({4, 9, 2}, rng);
  const std::string path = ::testing::TempDir() + "/params2.bin";
  ASSERT_TRUE(SaveParams(path, a.Params()));
  std::vector<Variable> bp = b.Params();
  EXPECT_FALSE(LoadParams(path, &bp));
}

TEST(SerializeTest, MissingFileFails) {
  std::vector<Variable> p;
  EXPECT_FALSE(LoadParams("/nonexistent/zzz.bin", &p));
}

}  // namespace
}  // namespace rapid::nn
