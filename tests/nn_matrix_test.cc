#include "nn/matrix.h"

#include <gtest/gtest.h>

#include <random>

namespace rapid::nn {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 0.0f);
  }
}

TEST(MatrixTest, ConstructFromFlatBuffer) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(0, 2), 3.0f);
  EXPECT_EQ(m.at(1, 0), 4.0f);
  EXPECT_EQ(m.at(1, 2), 6.0f);
}

TEST(MatrixTest, FillAndConstant) {
  Matrix m = Matrix::Constant(2, 2, 7.5f);
  EXPECT_EQ(m.at(1, 1), 7.5f);
  m.SetZero();
  EXPECT_EQ(m.Sum(), 0.0f);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.at(0, 0), 1.0f);
  EXPECT_EQ(id.at(1, 1), 1.0f);
  EXPECT_EQ(id.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(id.Sum(), 3.0f);
}

TEST(MatrixTest, RandnStats) {
  std::mt19937_64 rng(42);
  Matrix m = Matrix::Randn(100, 100, 2.0f, rng);
  // Mean near 0, stddev near 2.
  EXPECT_NEAR(m.Mean(), 0.0f, 0.1f);
  double var = 0.0;
  for (int i = 0; i < m.size(); ++i) {
    var += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  var /= m.size();
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(MatrixTest, UniformBounds) {
  std::mt19937_64 rng(7);
  Matrix m = Matrix::Uniform(50, 50, -1.0f, 3.0f, rng);
  for (int i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -1.0f);
    EXPECT_LE(m.data()[i], 3.0f);
  }
}

TEST(MatrixTest, RowColVector) {
  Matrix r = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 3);
  Matrix c = Matrix::ColVector({1, 2, 3});
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 1);
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.at(0, 1), 4.0f);
  EXPECT_EQ(t.at(2, 0), 3.0f);
  EXPECT_TRUE(t.Transposed().Equals(m));
}

TEST(MatrixTest, SumMeanNorm) {
  Matrix m(2, 2, {3, 4, 0, 0});
  EXPECT_FLOAT_EQ(m.Sum(), 7.0f);
  EXPECT_FLOAT_EQ(m.Mean(), 1.75f);
  EXPECT_FLOAT_EQ(m.Norm(), 5.0f);
  EXPECT_FLOAT_EQ(m.MaxAbs(), 4.0f);
}

TEST(MatrixTest, AllClose) {
  Matrix a(1, 2, {1.0f, 2.0f});
  Matrix b(1, 2, {1.005f, 2.0f});
  EXPECT_TRUE(a.AllClose(b, 0.01f));
  EXPECT_FALSE(a.AllClose(b, 0.001f));
  Matrix c(2, 1, {1.0f, 2.0f});
  EXPECT_FALSE(a.AllClose(c, 1.0f));  // Shape mismatch.
}

TEST(GemmTest, KnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix out;
  Gemm(a, b, &out);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 2);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154.0f);
}

TEST(GemmTest, IdentityIsNeutral) {
  std::mt19937_64 rng(1);
  Matrix a = Matrix::Randn(4, 4, 1.0f, rng);
  Matrix out;
  Gemm(a, Matrix::Identity(4), &out);
  EXPECT_TRUE(out.AllClose(a, 1e-6f));
}

TEST(GemmTest, TransAAccMatchesExplicitTranspose) {
  std::mt19937_64 rng(2);
  Matrix a = Matrix::Randn(5, 3, 1.0f, rng);
  Matrix b = Matrix::Randn(5, 4, 1.0f, rng);
  Matrix expect;
  Gemm(a.Transposed(), b, &expect);
  Matrix got(3, 4);
  Gemm(a, b, &got, {.trans_a = true, .accumulate = true});
  EXPECT_TRUE(got.AllClose(expect, 1e-4f));
}

TEST(GemmTest, TransBAccMatchesExplicitTranspose) {
  std::mt19937_64 rng(3);
  Matrix a = Matrix::Randn(5, 3, 1.0f, rng);
  Matrix b = Matrix::Randn(4, 3, 1.0f, rng);
  Matrix expect;
  Gemm(a, b.Transposed(), &expect);
  Matrix got(5, 4);
  Gemm(a, b, &got, {.trans_b = true, .accumulate = true});
  EXPECT_TRUE(got.AllClose(expect, 1e-4f));
}

TEST(GemmTest, TransBothMatchesExplicitTranspose) {
  std::mt19937_64 rng(4);
  Matrix a = Matrix::Randn(3, 5, 1.0f, rng);
  Matrix b = Matrix::Randn(4, 3, 1.0f, rng);
  Matrix expect;
  Gemm(a.Transposed(), b.Transposed(), &expect);
  Matrix got;
  Gemm(a, b, &got, {.trans_a = true, .trans_b = true});
  EXPECT_TRUE(got.AllClose(expect, 1e-4f));
}

TEST(GemmTest, AccumulationAddsOnTop) {
  Matrix a = Matrix::Identity(2);
  Matrix b(2, 2, {1, 2, 3, 4});
  Matrix out = Matrix::Constant(2, 2, 10.0f);
  Gemm(a, b, &out, {.accumulate = true});
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 14.0f);
}

TEST(GemmTest, NonAccumulateOverwritesWarmBuffer) {
  Matrix a = Matrix::Identity(2);
  Matrix b(2, 2, {1, 2, 3, 4});
  Matrix out = Matrix::Constant(2, 2, 99.0f);  // right shape, stale values
  Gemm(a, b, &out);
  EXPECT_TRUE(out.Equals(b));
}

TEST(ElementwiseTest, AddSubMul) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {4, 5, 6});
  EXPECT_TRUE(Add(a, b).Equals(Matrix(1, 3, {5, 7, 9})));
  EXPECT_TRUE(Sub(b, a).Equals(Matrix(1, 3, {3, 3, 3})));
  EXPECT_TRUE(Mul(a, b).Equals(Matrix(1, 3, {4, 10, 18})));
}

TEST(ElementwiseTest, InPlaceOps) {
  Matrix a(1, 2, {1, 2});
  AddInPlace(&a, Matrix(1, 2, {10, 20}));
  EXPECT_TRUE(a.Equals(Matrix(1, 2, {11, 22})));
  AxpyInPlace(&a, 2.0f, Matrix(1, 2, {1, 1}));
  EXPECT_TRUE(a.Equals(Matrix(1, 2, {13, 24})));
  ScaleInPlace(&a, 0.5f);
  EXPECT_TRUE(a.Equals(Matrix(1, 2, {6.5f, 12})));
}

TEST(ElementwiseTest, RowBroadcast) {
  Matrix a(2, 2, {1, 2, 3, 4});
  AddRowBroadcastInPlace(&a, Matrix::RowVector({10, 20}));
  EXPECT_TRUE(a.Equals(Matrix(2, 2, {11, 22, 13, 24})));
}

}  // namespace
}  // namespace rapid::nn
