#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/server.h"
#include "online/feedback.h"
#include "online/policy.h"
#include "online/trainer.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace rapid {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// FeedbackLog

online::FeedbackEvent Event(int user, int first_item = 0) {
  online::FeedbackEvent event;
  event.slot = "online";
  event.model_version = 1;
  event.list.user_id = user;
  for (int i = 0; i < 5; ++i) {
    event.list.items.push_back(first_item + i);
    event.list.clicks.push_back(i % 2);
  }
  return event;
}

TEST(FeedbackLogTest, AppendDrainIsFifoAndCounted) {
  online::FeedbackLog log;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(log.Append(Event(i)));
  EXPECT_EQ(log.size(), 5u);

  std::vector<online::FeedbackEvent> batch;
  EXPECT_EQ(log.Drain(3, &batch), 3u);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].list.user_id, 0);
  EXPECT_EQ(batch[2].list.user_id, 2);
  EXPECT_EQ(log.Drain(10, &batch), 2u);  // Appends to `batch`.
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch[4].list.user_id, 4);
  EXPECT_EQ(log.size(), 0u);

  serve::OnlineStats stats;
  log.FillStats(&stats);
  EXPECT_EQ(stats.feedback_appended, 5u);
  EXPECT_EQ(stats.feedback_dropped, 0u);
  EXPECT_EQ(stats.feedback_drained, 5u);
}

TEST(FeedbackLogTest, FullLogDropsInsteadOfBlocking) {
  online::FeedbackLogConfig cfg;
  cfg.capacity = 2;
  online::FeedbackLog log(cfg);
  EXPECT_TRUE(log.Append(Event(1)));
  EXPECT_TRUE(log.Append(Event(2)));
  EXPECT_FALSE(log.Append(Event(3)));  // Shed, not blocked.
  EXPECT_EQ(log.size(), 2u);

  serve::OnlineStats stats;
  log.FillStats(&stats);
  EXPECT_EQ(stats.feedback_appended, 2u);
  EXPECT_EQ(stats.feedback_dropped, 1u);
}

TEST(FeedbackLogTest, WaitDrainTimesOutEmptyAndWakesOnAppend) {
  online::FeedbackLog log;
  std::vector<online::FeedbackEvent> batch;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(log.WaitDrain(4, 30ms, &batch), 0u);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);

  std::thread appender([&log] {
    std::this_thread::sleep_for(20ms);
    log.Append(Event(7));
  });
  EXPECT_EQ(log.WaitDrain(4, 5s, &batch), 1u);  // Woken, not timed out.
  appender.join();
  EXPECT_EQ(batch[0].list.user_id, 7);
}

TEST(FeedbackLogTest, CloseWakesDrainersAndKeepsBufferedEventsDrainable) {
  online::FeedbackLog log;
  log.Append(Event(1));
  std::thread closer([&log] {
    std::this_thread::sleep_for(20ms);
    log.Close();
  });
  std::vector<online::FeedbackEvent> batch;
  // First WaitDrain returns the buffered event immediately; the second
  // returns 0 once the close lands instead of waiting out 5 seconds.
  EXPECT_EQ(log.WaitDrain(1, 5s, &batch), 1u);
  EXPECT_EQ(log.WaitDrain(1, 5s, &batch), 0u);
  closer.join();
  EXPECT_TRUE(log.closed());
  EXPECT_FALSE(log.Append(Event(2)));  // Post-close appends drop.
  log.Close();                         // Idempotent.
}

// ---------------------------------------------------------------------------
// PullCounts + OnlinePolicy

TEST(PullCountsTest, RecordsTopKPrefixPerUser) {
  online::PullCounts pulls;
  pulls.Record(1, {10, 11, 12, 13}, /*top_k=*/2);
  pulls.Record(1, {10, 13, 12, 11}, /*top_k=*/2);
  pulls.Record(2, {10, 11}, /*top_k=*/0);  // <= 0 records everything.
  EXPECT_EQ(pulls.Count(1, 10), 2u);
  EXPECT_EQ(pulls.Count(1, 11), 1u);
  EXPECT_EQ(pulls.Count(1, 13), 1u);
  EXPECT_EQ(pulls.Count(1, 12), 0u);  // Below the recorded prefix.
  EXPECT_EQ(pulls.UserTotal(1), 4u);
  EXPECT_EQ(pulls.UserTotal(2), 2u);
  EXPECT_EQ(pulls.Count(2, 10), 1u);
  EXPECT_EQ(pulls.UserTotal(3), 0u);
}

/// Identity heuristic base: keeps the submitted order, so position-derived
/// base scores are deterministic in tests.
class IdentityReranker : public rerank::Reranker {
 public:
  std::string name() const override { return "identity"; }
  std::vector<int> Rerank(const data::Dataset&,
                          const data::ImpressionList& list) const override {
    return list.items;
  }
};

data::ImpressionList ListOf(std::vector<int> items, int user = 1) {
  data::ImpressionList list;
  list.user_id = user;
  list.items = std::move(items);
  for (size_t i = 0; i < list.items.size(); ++i) {
    list.scores.push_back(1.0f - 0.01f * static_cast<float>(i));
  }
  return list;
}

TEST(OnlinePolicyTest, ZeroExplorationReproducesTheBaseRanking) {
  auto pulls = std::make_shared<online::PullCounts>();
  online::OnlinePolicyConfig cfg;
  cfg.exploration = 0.0;
  online::OnlinePolicy policy(std::make_shared<IdentityReranker>(), pulls,
                              cfg);
  const data::ImpressionList list = ListOf({5, 9, 2, 7});
  EXPECT_EQ(policy.Rerank({}, list), list.items);
  EXPECT_EQ(policy.name(), "UCB(identity)");
}

TEST(OnlinePolicyTest, ColdItemsGetBoostedUntilPulled) {
  auto pulls = std::make_shared<online::PullCounts>();
  // User 1 has seen items 10..13 fifty times each; item 99 never.
  for (int i = 0; i < 50; ++i) pulls->Record(1, {10, 11, 12, 13}, 0);
  online::OnlinePolicyConfig cfg;
  cfg.exploration = 5.0;
  cfg.record_top_k = 1;
  online::OnlinePolicy policy(std::make_shared<IdentityReranker>(), pulls,
                              cfg);
  // 99 sits last (worst base score) but its optimism bonus dominates.
  const data::ImpressionList list = ListOf({10, 11, 12, 13, 99});
  const std::vector<int> out = policy.Rerank({}, list);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], 99);
  // The serve recorded the top-1 pull, eroding 99's future bonus.
  EXPECT_EQ(pulls->Count(1, 99), 1u);
}

TEST(OnlinePolicyTest, OutputIsAlwaysAPermutation) {
  auto pulls = std::make_shared<online::PullCounts>();
  online::OnlinePolicy policy(std::make_shared<IdentityReranker>(), pulls,
                              online::OnlinePolicyConfig{});
  data::ImpressionList list = ListOf({4, 8, 15, 16, 23, 42});
  for (int round = 0; round < 20; ++round) {
    std::vector<int> out = policy.Rerank({}, list);
    std::vector<int> sorted_out = out;
    std::vector<int> sorted_in = list.items;
    std::sort(sorted_out.begin(), sorted_out.end());
    std::sort(sorted_in.begin(), sorted_in.end());
    EXPECT_EQ(sorted_out, sorted_in) << "round " << round;
  }
  EXPECT_EQ(policy.Rerank({}, data::ImpressionList{}), std::vector<int>{});
}

// ---------------------------------------------------------------------------
// Router wrapper hook + trainer loop (shared fixture with a real model)

class OnlineLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 15;
    cfg.num_items = 100;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 77);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(3);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }

  static core::RapidConfig SmallConfig() {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = 8;
    return cfg;
  }

  std::unique_ptr<core::RapidReranker> FittedModel(uint64_t seed = 6) {
    auto model = std::make_unique<core::RapidReranker>(SmallConfig());
    model->Fit(data_, train_, seed);
    return model;
  }

  std::string SnapshotOf(const core::RapidReranker& model,
                         const std::string& file) {
    const std::string path = ::testing::TempDir() + "/" + file;
    EXPECT_TRUE(serve::Snapshot::Save(path, model, data_));
    return path;
  }

  /// Polls `predicate` until it holds or ~5s elapse.
  template <typename Predicate>
  static bool Eventually(Predicate predicate) {
    for (int i = 0; i < 500; ++i) {
      if (predicate()) return true;
      std::this_thread::sleep_for(10ms);
    }
    return predicate();
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

TEST_F(OnlineLoopTest, SlotWrapperAppliesOnPublishAndClears) {
  const std::string path = SnapshotOf(*FittedModel(), "wrap.rsnp");
  serve::ServingRouter router(data_, {});
  auto pulls = std::make_shared<online::PullCounts>();
  router.SetSlotWrapper(
      "online", [pulls](std::shared_ptr<const rerank::Reranker> model) {
        online::OnlinePolicyConfig cfg;
        cfg.exploration = 0.0;  // Deterministic for the assertion below.
        return std::make_shared<const online::OnlinePolicy>(std::move(model),
                                                            pulls, cfg);
      });
  ASSERT_EQ(router.LoadSlot("online", path), 1u);

  serve::RouterStats stats = router.stats();
  ASSERT_EQ(stats.slots.size(), 1u);
  EXPECT_EQ(stats.slots[0].model_name.rfind("UCB(", 0), 0u)
      << stats.slots[0].model_name;

  // Other slots are untouched: deterministic serving stays the default.
  ASSERT_EQ(router.LoadSlot("plain", path), 1u);
  stats = router.stats();
  for (const auto& slot : stats.slots) {
    if (slot.slot == "plain") {
      EXPECT_EQ(slot.model_name.rfind("UCB(", 0), std::string::npos);
    }
  }

  // Clearing the wrapper takes effect on the next publish of that slot.
  EXPECT_TRUE(router.ClearSlotWrapper("online"));
  EXPECT_FALSE(router.ClearSlotWrapper("online"));  // Already gone.
  ASSERT_EQ(router.LoadSlot("online", path), 2u);
  stats = router.stats();
  for (const auto& slot : stats.slots) {
    if (slot.slot == "online") {
      EXPECT_EQ(slot.model_name.rfind("UCB(", 0), std::string::npos);
    }
  }
}

TEST_F(OnlineLoopTest, WrappedSlotStillServesPermutations) {
  const std::string path = SnapshotOf(*FittedModel(), "wrap_serve.rsnp");
  serve::RouterConfig cfg;
  cfg.num_threads = 2;
  serve::ServingRouter router(data_, cfg);
  auto pulls = std::make_shared<online::PullCounts>();
  router.SetSlotWrapper(
      "online", [pulls](std::shared_ptr<const rerank::Reranker> model) {
        return std::make_shared<const online::OnlinePolicy>(
            std::move(model), pulls, online::OnlinePolicyConfig{});
      });
  ASSERT_EQ(router.LoadSlot("online", path), 1u);

  serve::RouterRequest request;
  request.slot = "online";
  request.list = train_[0];
  serve::RouterResponse response = router.Submit(std::move(request)).get();
  EXPECT_FALSE(response.degraded);
  std::vector<int> sorted_out = response.items;
  std::vector<int> sorted_in = train_[0].items;
  std::sort(sorted_out.begin(), sorted_out.end());
  std::sort(sorted_in.begin(), sorted_in.end());
  EXPECT_EQ(sorted_out, sorted_in);
  // The wrapped policy recorded the serve as pulls.
  EXPECT_GT(pulls->UserTotal(train_[0].user_id), 0u);
}

TEST_F(OnlineLoopTest, TrainerPublishesThroughCanaryGuardedLoadSlot) {
  auto serving = FittedModel(6);
  const std::string initial = SnapshotOf(*serving, "trainer_initial.rsnp");
  serve::ServingRouter router(data_, {});
  ASSERT_EQ(router.LoadSlot("online", initial), 1u);

  online::FeedbackLog log;
  online::OnlineTrainerConfig cfg;
  cfg.slot = "online";
  cfg.min_batch = 2;
  cfg.max_batch = 8;
  cfg.publish_every_rounds = 1;
  cfg.poll_interval = 10ms;
  cfg.snapshot_path = ::testing::TempDir() + "/trainer_publish.rsnp";
  online::OnlineTrainer trainer(data_, &router, &log, FittedModel(7), cfg);
  trainer.Start();

  for (int i = 0; i < 4; ++i) {
    online::FeedbackEvent event;
    event.slot = "online";
    event.model_version = 1;
    event.list = train_[i % train_.size()];
    ASSERT_TRUE(log.Append(std::move(event)));
  }

  ASSERT_TRUE(Eventually([&] { return trainer.Stats().publishes >= 1; }));
  trainer.Stop();

  const serve::OnlineStats stats = trainer.Stats();
  EXPECT_GE(stats.train_rounds, 1u);
  EXPECT_GE(stats.trained_lists, 4u);
  EXPECT_GE(stats.feedback_drained, 4u);
  EXPECT_EQ(stats.publish_rejected, 0u);
  EXPECT_GE(stats.last_published_version, 2u);

  // The publish really went through the router's slot, bumping its
  // version past the initial load.
  serve::RouterStats router_stats;
  trainer.FillStats(&router_stats);
  EXPECT_TRUE(router_stats.has_online);
  const serve::RouterStats live = router.stats();
  ASSERT_EQ(live.slots.size(), 1u);
  EXPECT_EQ(live.slots[0].version, stats.last_published_version);
}

TEST_F(OnlineLoopTest, TrainerWithNoFeedbackSkipsItsShutdownPublish) {
  serve::ServingRouter router(data_, {});
  online::FeedbackLog log;
  online::OnlineTrainerConfig cfg;
  cfg.snapshot_path = ::testing::TempDir() + "/trainer_skip.rsnp";
  cfg.poll_interval = 5ms;
  online::OnlineTrainer trainer(data_, &router, &log, FittedModel(8), cfg);
  trainer.Start();
  std::this_thread::sleep_for(30ms);
  trainer.Stop();

  const serve::OnlineStats stats = trainer.Stats();
  EXPECT_EQ(stats.train_rounds, 0u);
  EXPECT_EQ(stats.publishes, 0u);
  // The shutdown flush attempted a publish with nothing new: skipped.
  EXPECT_GE(stats.publish_skipped, 1u);
  EXPECT_EQ(router.stats().slots.size(), 0u);  // Never touched the router.
}

// ---------------------------------------------------------------------------
// Feedback over the wire

net::WireRequest ScoreRequest(const std::string& slot,
                              const data::ImpressionList& list) {
  net::WireRequest request;
  request.slot = slot;
  request.list = list;
  return request;
}

TEST_F(OnlineLoopTest, FeedbackFramesLandInTheLogAndAreAcked) {
  serve::ServingRouter router(data_, {});
  online::FeedbackLog log;
  net::ServerConfig cfg;
  cfg.feedback_log = &log;
  net::Server server(router, cfg);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  bool accepted = false;
  ASSERT_TRUE(client.SendFeedback("online", 3, 42, {9, 7, 5}, {1, 0, 1},
                                  &accepted, 2000));
  EXPECT_TRUE(accepted);
  EXPECT_EQ(server.stats().feedback_frames, 1u);

  std::vector<online::FeedbackEvent> batch;
  ASSERT_EQ(log.Drain(10, &batch), 1u);
  EXPECT_EQ(batch[0].slot, "online");
  EXPECT_EQ(batch[0].model_version, 3u);
  EXPECT_EQ(batch[0].list.user_id, 42);
  EXPECT_EQ(batch[0].list.items, (std::vector<int>{9, 7, 5}));
  EXPECT_EQ(batch[0].list.clicks, (std::vector<int>{1, 0, 1}));
  server.Stop();
}

TEST_F(OnlineLoopTest, FeedbackIsRefusedWhenDisabledAndShedWhenFull) {
  serve::ServingRouter router(data_, {});
  // Disabled: no log configured — answered, not accepted.
  {
    net::Server server(router);
    ASSERT_TRUE(server.Start());
    net::Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    bool accepted = true;
    ASSERT_TRUE(client.SendFeedback("online", 1, 1, {1}, {0}, &accepted,
                                    2000));
    EXPECT_FALSE(accepted);
    server.Stop();
  }
  // Full: the bounded log sheds and the ack reports it.
  {
    online::FeedbackLogConfig log_cfg;
    log_cfg.capacity = 1;
    online::FeedbackLog log(log_cfg);
    net::ServerConfig cfg;
    cfg.feedback_log = &log;
    net::Server server(router, cfg);
    ASSERT_TRUE(server.Start());
    net::Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    bool first = false, second = true;
    ASSERT_TRUE(client.SendFeedback("online", 1, 1, {1}, {0}, &first, 2000));
    ASSERT_TRUE(client.SendFeedback("online", 1, 1, {2}, {1}, &second, 2000));
    EXPECT_TRUE(first);
    EXPECT_FALSE(second);
    serve::OnlineStats stats;
    log.FillStats(&stats);
    EXPECT_EQ(stats.feedback_appended, 1u);
    EXPECT_EQ(stats.feedback_dropped, 1u);
    server.Stop();
  }
}

TEST_F(OnlineLoopTest, StatsScrapesCarryTheOnlineBlockAndPrometheusText) {
  serve::ServingRouter router(data_, {});
  online::FeedbackLog log;
  net::ServerConfig cfg;
  cfg.feedback_log = &log;
  cfg.online_stats = [&log] {
    serve::OnlineStats stats;
    log.FillStats(&stats);
    stats.train_rounds = 7;  // Stand-in for a live trainer's counters.
    return stats;
  };
  net::Server server(router, cfg);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  bool accepted = false;
  ASSERT_TRUE(client.SendFeedback("online", 1, 5, {3, 4}, {1, 0}, &accepted,
                                  2000));

  serve::RouterStats stats;
  ASSERT_TRUE(client.GetStats(&stats, 2000));
  ASSERT_TRUE(stats.has_online);
  EXPECT_EQ(stats.online.feedback_appended, 1u);
  EXPECT_EQ(stats.online.train_rounds, 7u);
  EXPECT_EQ(stats.net.feedback_frames, 1u);

  std::string text;
  ASSERT_TRUE(client.GetStatsPrometheus(&text, 2000));
  EXPECT_NE(text.find("rapid_online_feedback_appended_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rapid_online_train_rounds_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("rapid_net_feedback_frames_total 1\n"),
            std::string::npos);

  std::string json;
  ASSERT_TRUE(client.GetStatsJson(&json, 2000));
  EXPECT_NE(json.find("\"online\""), std::string::npos);
  server.Stop();
}

// The full loop under concurrency — serve + feedback + train + publish all
// at once. Run under -DRAPID_SANITIZE=thread this is the PR's TSan gate;
// the zero-drop assertion holds in any build.
TEST_F(OnlineLoopTest, ConcurrentServeTrainPublishDropsNothing) {
  auto serving = FittedModel(6);
  const std::string initial = SnapshotOf(*serving, "loop_initial.rsnp");
  serve::RouterConfig router_cfg;
  router_cfg.num_threads = 2;
  router_cfg.cache.bypass_slots = {"online"};  // Exploration must not cache.
  serve::ServingRouter router(data_, router_cfg);
  auto pulls = std::make_shared<online::PullCounts>();
  router.SetSlotWrapper(
      "online", [pulls](std::shared_ptr<const rerank::Reranker> model) {
        return std::make_shared<const online::OnlinePolicy>(
            std::move(model), pulls, online::OnlinePolicyConfig{});
      });
  ASSERT_EQ(router.LoadSlot("online", initial), 1u);

  online::FeedbackLog log;
  online::OnlineTrainerConfig trainer_cfg;
  trainer_cfg.slot = "online";
  trainer_cfg.min_batch = 2;
  trainer_cfg.max_batch = 8;
  trainer_cfg.poll_interval = 10ms;
  trainer_cfg.snapshot_path = ::testing::TempDir() + "/loop_publish.rsnp";
  online::OnlineTrainer trainer(data_, &router, &log, FittedModel(7),
                                trainer_cfg);

  net::ServerConfig server_cfg;
  server_cfg.feedback_log = &log;
  server_cfg.online_stats = [&trainer] { return trainer.Stats(); };
  net::Server server(router, server_cfg);
  ASSERT_TRUE(server.Start());
  trainer.Start();

  const uint16_t port = server.port();
  std::atomic<int> transport_failures{0};
  const auto driver = [&](int thread_id) {
    net::Client client;
    if (!client.Connect("127.0.0.1", port)) {
      transport_failures.fetch_add(1);
      return;
    }
    std::mt19937_64 rng(100 + thread_id);
    for (int i = 0; i < 25; ++i) {
      const data::ImpressionList& list = train_[(i + thread_id) %
                                                train_.size()];
      net::Client::Reply reply;
      if (!client.Call(ScoreRequest("online", list), &reply, 5000) ||
          reply.is_error) {
        transport_failures.fetch_add(1);
        return;
      }
      // Feed the served order back with fresh simulated clicks.
      std::vector<uint8_t> clicks;
      for (size_t k = 0; k < reply.response.items.size(); ++k) {
        clicks.push_back(static_cast<uint8_t>(rng() & 1));
      }
      bool accepted = false;
      if (!client.SendFeedback("online", reply.response.model_version,
                               list.user_id, reply.response.items, clicks,
                               &accepted, 5000)) {
        transport_failures.fetch_add(1);
        return;
      }
    }
  };
  std::thread a(driver, 0), b(driver, 1);
  a.join();
  b.join();
  EXPECT_EQ(transport_failures.load(), 0);

  // The trainer saw enough feedback to retrain and republish at least once.
  EXPECT_TRUE(Eventually([&] { return trainer.Stats().publishes >= 1; }));

  server.Stop();
  trainer.Stop();
  log.Close();

  const serve::NetStats net_stats = server.stats();
  EXPECT_EQ(net_stats.dropped_responses, 0u);  // Zero-drop under churn.
  EXPECT_EQ(net_stats.feedback_frames, 50u);
  const serve::OnlineStats online_stats = trainer.Stats();
  EXPECT_GE(online_stats.publishes, 1u);
  EXPECT_EQ(online_stats.publish_rejected, 0u);
  const serve::RouterStats router_stats = router.stats();
  ASSERT_EQ(router_stats.slots.size(), 1u);
  EXPECT_GE(router_stats.slots[0].version, 2u);
  EXPECT_EQ(router_stats.slots[0].model_name.rfind("UCB(", 0), 0u);
}

}  // namespace
}  // namespace rapid
