#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "net/codec.h"

namespace rapid {
namespace {

net::WireRequest SampleRequest(uint64_t id = 7) {
  net::WireRequest request;
  request.request_id = id;
  request.slot = "main";
  request.lane = serve::Lane::kLow;
  request.deadline_us = 2500;
  request.list.user_id = 42;
  for (int i = 0; i < 10; ++i) {
    request.list.items.push_back(100 + i);
    request.list.scores.push_back(1.0f - 0.1f * static_cast<float>(i));
  }
  return request;
}

net::WireResponse SampleResponse(uint64_t id = 7) {
  net::WireResponse response;
  response.request_id = id;
  response.degraded = true;
  response.cache_hit = true;
  response.model_name = "rapid-v2";
  response.model_version = 9;
  response.server_latency_us = 1234;
  response.items = {3, 1, 4, 1, 5};
  return response;
}

std::vector<uint8_t> Encoded(const net::WireRequest& request) {
  std::vector<uint8_t> bytes;
  net::EncodeScoreRequest(request, &bytes);
  return bytes;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(NetCodecTest, ScoreRequestRoundTrips) {
  const net::WireRequest request = SampleRequest();
  const std::vector<uint8_t> bytes = Encoded(request);
  ASSERT_GE(bytes.size(), net::kFrameHeaderBytes);

  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.header.type, net::FrameType::kScoreRequest);
  EXPECT_EQ(frame.header.request_id, request.request_id);

  net::WireRequest decoded;
  ASSERT_TRUE(net::ParseScoreRequest(frame, &decoded));
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.slot, request.slot);
  EXPECT_EQ(decoded.lane, request.lane);
  EXPECT_EQ(decoded.deadline_us, request.deadline_us);
  EXPECT_EQ(decoded.list.user_id, request.list.user_id);
  EXPECT_EQ(decoded.list.items, request.list.items);
  EXPECT_EQ(decoded.list.scores, request.list.scores);
}

TEST(NetCodecTest, ScoreResponseAndErrorRoundTrip) {
  const net::WireResponse response = SampleResponse();
  std::vector<uint8_t> bytes;
  net::EncodeScoreResponse(response, &bytes);
  net::EncodeError(11, "slot unknown", &bytes);  // Appended, same buffer.

  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);
  net::WireResponse decoded;
  ASSERT_TRUE(net::ParseScoreResponse(frame, &decoded));
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_EQ(decoded.degraded, response.degraded);
  EXPECT_EQ(decoded.shed, response.shed);
  EXPECT_EQ(decoded.cache_hit, response.cache_hit);
  EXPECT_EQ(decoded.model_name, response.model_name);
  EXPECT_EQ(decoded.model_version, response.model_version);
  EXPECT_EQ(decoded.server_latency_us, response.server_latency_us);
  EXPECT_EQ(decoded.items, response.items);

  // Second frame in the same flat buffer: the error report.
  const size_t first = consumed;
  ASSERT_EQ(net::ExtractFrame(bytes.data() + first, bytes.size() - first,
                              &consumed, &frame),
            net::DecodeStatus::kOk);
  EXPECT_EQ(first + consumed, bytes.size());
  net::WireError error;
  ASSERT_TRUE(net::ParseError(frame, &error));
  EXPECT_EQ(error.request_id, 11u);
  EXPECT_EQ(error.message, "slot unknown");
}

TEST(NetCodecTest, RandomizedRequestsRoundTripExactly) {
  std::mt19937_64 rng(20260805);
  std::uniform_int_distribution<int> num_items(0, 64);
  std::uniform_int_distribution<int> slot_len(0, 32);
  std::uniform_real_distribution<float> score(-10.0f, 10.0f);
  for (int trial = 0; trial < 200; ++trial) {
    net::WireRequest request;
    request.request_id = rng();
    const int n = slot_len(rng);
    for (int i = 0; i < n; ++i) {
      request.slot.push_back(static_cast<char>('a' + (rng() % 26)));
    }
    request.lane = (rng() & 1) ? serve::Lane::kLow : serve::Lane::kHigh;
    request.deadline_us = static_cast<int64_t>(rng() % 1'000'000);
    request.list.user_id = static_cast<int>(rng() % 10'000);
    const int items = num_items(rng);
    for (int i = 0; i < items; ++i) {
      request.list.items.push_back(static_cast<int>(rng() % 100'000));
      request.list.scores.push_back(score(rng));
    }

    const std::vector<uint8_t> bytes = Encoded(request);
    size_t consumed = 0;
    net::Frame frame;
    ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
              net::DecodeStatus::kOk)
        << trial;
    ASSERT_EQ(consumed, bytes.size()) << trial;
    net::WireRequest decoded;
    ASSERT_TRUE(net::ParseScoreRequest(frame, &decoded)) << trial;
    EXPECT_EQ(decoded.request_id, request.request_id);
    EXPECT_EQ(decoded.slot, request.slot);
    EXPECT_EQ(decoded.lane, request.lane);
    EXPECT_EQ(decoded.deadline_us, request.deadline_us);
    EXPECT_EQ(decoded.list.user_id, request.list.user_id);
    EXPECT_EQ(decoded.list.items, request.list.items);
    // Scores must survive bit-exactly (they feed the cache fingerprint).
    ASSERT_EQ(decoded.list.scores.size(), request.list.scores.size());
    if (!request.list.scores.empty()) {
      EXPECT_EQ(0, std::memcmp(decoded.list.scores.data(),
                               request.list.scores.data(),
                               request.list.scores.size() * sizeof(float)));
    }
  }
}

// ---------------------------------------------------------------------------
// Framing robustness: torn, corrupt, and hostile buffers

TEST(NetCodecTest, EveryTruncationIsNeedMoreNeverError) {
  const std::vector<uint8_t> bytes = Encoded(SampleRequest());
  // Any strict prefix of a valid frame is an incomplete read in progress:
  // the decoder must ask for more bytes, not kill the connection. (A
  // prefix shorter than the magic cannot be vetted yet either.)
  for (size_t size = 0; size < bytes.size(); ++size) {
    size_t consumed = 0;
    net::Frame frame;
    EXPECT_EQ(net::ExtractFrame(bytes.data(), size, &consumed, &frame),
              net::DecodeStatus::kNeedMore)
        << "prefix of " << size << " bytes";
  }
}

struct CorruptCase {
  const char* name;
  size_t offset;      // Byte to overwrite...
  uint8_t value;      // ...with this value.
};

TEST(NetCodecTest, CorruptHeadersAreRejectedWithoutCrash) {
  const std::vector<uint8_t> valid = Encoded(SampleRequest());
  const CorruptCase cases[] = {
      {"bad magic byte 0", 0, 0x00},
      {"bad magic byte 3", 3, 0xFF},
      {"unknown version", 4, 99},
      {"reserved flags set", 6, 0x01},
      {"reserved flags high byte", 7, 0x80},
  };
  for (const CorruptCase& c : cases) {
    std::vector<uint8_t> bytes = valid;
    bytes[c.offset] = c.value;
    size_t consumed = 0;
    net::Frame frame;
    EXPECT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
              net::DecodeStatus::kError)
        << c.name;
  }

  // An oversized payload length is rejected from the header alone — the
  // decoder must not wait for (or allocate) a gigabyte that will never
  // arrive.
  std::vector<uint8_t> bytes = valid;
  const uint32_t huge = 0x40000000;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  size_t consumed = 0;
  net::Frame frame;
  EXPECT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kError);

  // A length just past the configured cap is equally dead, even though the
  // header itself is well-formed.
  net::CodecLimits limits;
  limits.max_payload_bytes = 64;
  std::vector<uint8_t> capped = valid;
  const uint32_t over = 65;
  std::memcpy(capped.data() + 16, &over, sizeof(over));
  EXPECT_EQ(
      net::ExtractFrame(capped.data(), capped.size(), &consumed, &frame, limits),
      net::DecodeStatus::kError);
}

TEST(NetCodecTest, ZeroLengthPayloadFramesParseCleanly) {
  // Hand-build a header-only frame (payload_len = 0) of each type. The
  // framing layer accepts it; the payload parsers reject it as truncated
  // without reading out of bounds.
  for (uint8_t type = 1; type <= 3; ++type) {
    std::vector<uint8_t> bytes(net::kFrameHeaderBytes, 0);
    std::memcpy(bytes.data(), &net::kFrameMagic, 4);
    bytes[4] = net::kProtocolVersion;
    bytes[5] = type;
    const uint64_t id = 5;
    std::memcpy(bytes.data() + 8, &id, sizeof(id));

    size_t consumed = 0;
    net::Frame frame;
    ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
              net::DecodeStatus::kOk)
        << int{type};
    EXPECT_EQ(frame.payload.size(), 0u);
    net::WireRequest request;
    net::WireResponse response;
    net::WireError error;
    // Every payload starts with at least a length word, so a zero-byte
    // payload is truncated for all three types.
    EXPECT_FALSE(net::ParseScoreRequest(frame, &request)) << int{type};
    EXPECT_FALSE(net::ParseScoreResponse(frame, &response)) << int{type};
    EXPECT_FALSE(net::ParseError(frame, &error)) << int{type};
  }
}

TEST(NetCodecTest, ItemCountPointingPastPayloadEndFailsCleanly) {
  std::vector<uint8_t> bytes = Encoded(SampleRequest());
  // The item-count word sits after slot (u16 len + 4 bytes of "main"),
  // lane (u8), deadline (i64), and user id (i32) in the payload. Inflate
  // it so the declared array runs far past the payload end.
  const size_t count_off = net::kFrameHeaderBytes + 2 + 4 + 1 + 8 + 4;
  ASSERT_LT(count_off + 4, bytes.size());
  const uint32_t absurd = 0x00FFFFFF;
  std::memcpy(bytes.data() + count_off, &absurd, sizeof(absurd));

  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);  // Framing is intact...
  net::WireRequest decoded;
  EXPECT_FALSE(net::ParseScoreRequest(frame, &decoded));  // ...payload not.
}

TEST(NetCodecTest, SingleBitFlipsNeverCrashTheDecoder) {
  const std::vector<uint8_t> valid = Encoded(SampleRequest());
  // Exhaustive single-bit corruption over the whole frame: every outcome
  // (accept, need-more, error, parse failure) is acceptable — crashing,
  // hanging, or reading out of bounds is not. ASan/UBSan builds give this
  // test its teeth.
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bytes = valid;
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      size_t consumed = 0;
      net::Frame frame;
      const net::DecodeStatus status =
          net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame);
      if (status == net::DecodeStatus::kOk) {
        net::WireRequest decoded;
        net::WireResponse response;
        net::WireError error;
        net::ParseScoreRequest(frame, &decoded);
        net::ParseScoreResponse(frame, &response);
        net::ParseError(frame, &error);
      }
    }
  }
}

TEST(NetCodecTest, RandomGarbageBuffersNeverCrashTheDecoder) {
  std::mt19937_64 rng(97);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes(rng() % 256);
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng());
    size_t consumed = 0;
    net::Frame frame;
    const net::DecodeStatus status =
        net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame);
    if (status == net::DecodeStatus::kOk) {
      EXPECT_LE(consumed, bytes.size());
      net::WireRequest request;
      net::ParseScoreRequest(frame, &request);
    }
  }
}

TEST(NetCodecTest, LimitsBoundItemAndStringSizes) {
  net::CodecLimits limits;
  limits.max_items = 4;
  net::WireRequest request = SampleRequest();  // 10 items > 4 allowed.
  const std::vector<uint8_t> bytes = Encoded(request);
  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);
  net::WireRequest decoded;
  EXPECT_FALSE(net::ParseScoreRequest(frame, &decoded, limits));
  EXPECT_TRUE(net::ParseScoreRequest(frame, &decoded));  // Default limits ok.

  net::CodecLimits tight;
  tight.max_string_bytes = 2;
  EXPECT_FALSE(net::ParseScoreRequest(frame, &decoded, tight));  // "main" > 2.
}

}  // namespace
}  // namespace rapid
