#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "net/codec.h"

namespace rapid {
namespace {

net::WireRequest SampleRequest(uint64_t id = 7) {
  net::WireRequest request;
  request.request_id = id;
  request.slot = "main";
  request.lane = serve::Lane::kLow;
  request.deadline_us = 2500;
  request.list.user_id = 42;
  for (int i = 0; i < 10; ++i) {
    request.list.items.push_back(100 + i);
    request.list.scores.push_back(1.0f - 0.1f * static_cast<float>(i));
  }
  return request;
}

net::WireResponse SampleResponse(uint64_t id = 7) {
  net::WireResponse response;
  response.request_id = id;
  response.degraded = true;
  response.cache_hit = true;
  response.model_name = "rapid-v2";
  response.model_version = 9;
  response.server_latency_us = 1234;
  response.items = {3, 1, 4, 1, 5};
  return response;
}

std::vector<uint8_t> Encoded(const net::WireRequest& request) {
  std::vector<uint8_t> bytes;
  net::EncodeScoreRequest(request, &bytes);
  return bytes;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(NetCodecTest, ScoreRequestRoundTrips) {
  const net::WireRequest request = SampleRequest();
  const std::vector<uint8_t> bytes = Encoded(request);
  ASSERT_GE(bytes.size(), net::kFrameHeaderBytes);

  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.header.type, net::FrameType::kScoreRequest);
  EXPECT_EQ(frame.header.request_id, request.request_id);

  net::WireRequest decoded;
  ASSERT_TRUE(net::ParseScoreRequest(frame, &decoded));
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.slot, request.slot);
  EXPECT_EQ(decoded.lane, request.lane);
  EXPECT_EQ(decoded.deadline_us, request.deadline_us);
  EXPECT_EQ(decoded.list.user_id, request.list.user_id);
  EXPECT_EQ(decoded.list.items, request.list.items);
  EXPECT_EQ(decoded.list.scores, request.list.scores);
}

TEST(NetCodecTest, ScoreResponseAndErrorRoundTrip) {
  const net::WireResponse response = SampleResponse();
  std::vector<uint8_t> bytes;
  net::EncodeScoreResponse(response, &bytes);
  net::EncodeError(11, "slot unknown", &bytes);  // Appended, same buffer.

  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);
  net::WireResponse decoded;
  ASSERT_TRUE(net::ParseScoreResponse(frame, &decoded));
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_EQ(decoded.degraded, response.degraded);
  EXPECT_EQ(decoded.shed, response.shed);
  EXPECT_EQ(decoded.cache_hit, response.cache_hit);
  EXPECT_EQ(decoded.model_name, response.model_name);
  EXPECT_EQ(decoded.model_version, response.model_version);
  EXPECT_EQ(decoded.server_latency_us, response.server_latency_us);
  EXPECT_EQ(decoded.items, response.items);

  // Second frame in the same flat buffer: the error report.
  const size_t first = consumed;
  ASSERT_EQ(net::ExtractFrame(bytes.data() + first, bytes.size() - first,
                              &consumed, &frame),
            net::DecodeStatus::kOk);
  EXPECT_EQ(first + consumed, bytes.size());
  net::WireError error;
  ASSERT_TRUE(net::ParseError(frame, &error));
  EXPECT_EQ(error.request_id, 11u);
  EXPECT_EQ(error.message, "slot unknown");
}

TEST(NetCodecTest, RandomizedRequestsRoundTripExactly) {
  std::mt19937_64 rng(20260805);
  std::uniform_int_distribution<int> num_items(0, 64);
  std::uniform_int_distribution<int> slot_len(0, 32);
  std::uniform_real_distribution<float> score(-10.0f, 10.0f);
  for (int trial = 0; trial < 200; ++trial) {
    net::WireRequest request;
    request.request_id = rng();
    const int n = slot_len(rng);
    for (int i = 0; i < n; ++i) {
      request.slot.push_back(static_cast<char>('a' + (rng() % 26)));
    }
    request.lane = (rng() & 1) ? serve::Lane::kLow : serve::Lane::kHigh;
    request.deadline_us = static_cast<int64_t>(rng() % 1'000'000);
    request.list.user_id = static_cast<int>(rng() % 10'000);
    const int items = num_items(rng);
    for (int i = 0; i < items; ++i) {
      request.list.items.push_back(static_cast<int>(rng() % 100'000));
      request.list.scores.push_back(score(rng));
    }

    const std::vector<uint8_t> bytes = Encoded(request);
    size_t consumed = 0;
    net::Frame frame;
    ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
              net::DecodeStatus::kOk)
        << trial;
    ASSERT_EQ(consumed, bytes.size()) << trial;
    net::WireRequest decoded;
    ASSERT_TRUE(net::ParseScoreRequest(frame, &decoded)) << trial;
    EXPECT_EQ(decoded.request_id, request.request_id);
    EXPECT_EQ(decoded.slot, request.slot);
    EXPECT_EQ(decoded.lane, request.lane);
    EXPECT_EQ(decoded.deadline_us, request.deadline_us);
    EXPECT_EQ(decoded.list.user_id, request.list.user_id);
    EXPECT_EQ(decoded.list.items, request.list.items);
    // Scores must survive bit-exactly (they feed the cache fingerprint).
    ASSERT_EQ(decoded.list.scores.size(), request.list.scores.size());
    if (!request.list.scores.empty()) {
      EXPECT_EQ(0, std::memcmp(decoded.list.scores.data(),
                               request.list.scores.data(),
                               request.list.scores.size() * sizeof(float)));
    }
  }
}

// ---------------------------------------------------------------------------
// Framing robustness: torn, corrupt, and hostile buffers

TEST(NetCodecTest, EveryTruncationIsNeedMoreNeverError) {
  const std::vector<uint8_t> bytes = Encoded(SampleRequest());
  // Any strict prefix of a valid frame is an incomplete read in progress:
  // the decoder must ask for more bytes, not kill the connection. (A
  // prefix shorter than the magic cannot be vetted yet either.)
  for (size_t size = 0; size < bytes.size(); ++size) {
    size_t consumed = 0;
    net::Frame frame;
    EXPECT_EQ(net::ExtractFrame(bytes.data(), size, &consumed, &frame),
              net::DecodeStatus::kNeedMore)
        << "prefix of " << size << " bytes";
  }
}

struct CorruptCase {
  const char* name;
  size_t offset;      // Byte to overwrite...
  uint8_t value;      // ...with this value.
};

TEST(NetCodecTest, CorruptHeadersAreRejectedWithoutCrash) {
  const std::vector<uint8_t> valid = Encoded(SampleRequest());
  const CorruptCase cases[] = {
      {"bad magic byte 0", 0, 0x00},
      {"bad magic byte 3", 3, 0xFF},
      {"unknown version", 4, 99},
      {"reserved flags set", 6, 0x01},
      {"reserved flags high byte", 7, 0x80},
  };
  for (const CorruptCase& c : cases) {
    std::vector<uint8_t> bytes = valid;
    bytes[c.offset] = c.value;
    size_t consumed = 0;
    net::Frame frame;
    EXPECT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
              net::DecodeStatus::kError)
        << c.name;
  }

  // An oversized payload length is rejected from the header alone — the
  // decoder must not wait for (or allocate) a gigabyte that will never
  // arrive.
  std::vector<uint8_t> bytes = valid;
  const uint32_t huge = 0x40000000;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  size_t consumed = 0;
  net::Frame frame;
  EXPECT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kError);

  // A length just past the configured cap is equally dead, even though the
  // header itself is well-formed.
  net::CodecLimits limits;
  limits.max_payload_bytes = 64;
  std::vector<uint8_t> capped = valid;
  const uint32_t over = 65;
  std::memcpy(capped.data() + 16, &over, sizeof(over));
  EXPECT_EQ(
      net::ExtractFrame(capped.data(), capped.size(), &consumed, &frame, limits),
      net::DecodeStatus::kError);
}

TEST(NetCodecTest, ZeroLengthPayloadFramesParseCleanly) {
  // Hand-build a header-only frame (payload_len = 0) of each type. The
  // framing layer accepts it; the payload parsers reject it as truncated
  // without reading out of bounds.
  for (uint8_t type = 1; type <= 3; ++type) {
    std::vector<uint8_t> bytes(net::kFrameHeaderBytes, 0);
    std::memcpy(bytes.data(), &net::kFrameMagic, 4);
    bytes[4] = net::kProtocolVersion;
    bytes[5] = type;
    const uint64_t id = 5;
    std::memcpy(bytes.data() + 8, &id, sizeof(id));

    size_t consumed = 0;
    net::Frame frame;
    ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
              net::DecodeStatus::kOk)
        << int{type};
    EXPECT_EQ(frame.payload.size(), 0u);
    net::WireRequest request;
    net::WireResponse response;
    net::WireError error;
    // Every payload starts with at least a length word, so a zero-byte
    // payload is truncated for all three types.
    EXPECT_FALSE(net::ParseScoreRequest(frame, &request)) << int{type};
    EXPECT_FALSE(net::ParseScoreResponse(frame, &response)) << int{type};
    EXPECT_FALSE(net::ParseError(frame, &error)) << int{type};
  }
}

TEST(NetCodecTest, ItemCountPointingPastPayloadEndFailsCleanly) {
  std::vector<uint8_t> bytes = Encoded(SampleRequest());
  // The item-count word sits after slot (u16 len + 4 bytes of "main"),
  // lane (u8), deadline (i64), and user id (i32) in the payload. Inflate
  // it so the declared array runs far past the payload end.
  const size_t count_off = net::kFrameHeaderBytes + 2 + 4 + 1 + 8 + 4;
  ASSERT_LT(count_off + 4, bytes.size());
  const uint32_t absurd = 0x00FFFFFF;
  std::memcpy(bytes.data() + count_off, &absurd, sizeof(absurd));

  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);  // Framing is intact...
  net::WireRequest decoded;
  EXPECT_FALSE(net::ParseScoreRequest(frame, &decoded));  // ...payload not.
}

TEST(NetCodecTest, SingleBitFlipsNeverCrashTheDecoder) {
  const std::vector<uint8_t> valid = Encoded(SampleRequest());
  // Exhaustive single-bit corruption over the whole frame: every outcome
  // (accept, need-more, error, parse failure) is acceptable — crashing,
  // hanging, or reading out of bounds is not. ASan/UBSan builds give this
  // test its teeth.
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bytes = valid;
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      size_t consumed = 0;
      net::Frame frame;
      const net::DecodeStatus status =
          net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame);
      if (status == net::DecodeStatus::kOk) {
        net::WireRequest decoded;
        net::WireResponse response;
        net::WireError error;
        net::ParseScoreRequest(frame, &decoded);
        net::ParseScoreResponse(frame, &response);
        net::ParseError(frame, &error);
      }
    }
  }
}

TEST(NetCodecTest, RandomGarbageBuffersNeverCrashTheDecoder) {
  std::mt19937_64 rng(97);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes(rng() % 256);
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng());
    size_t consumed = 0;
    net::Frame frame;
    const net::DecodeStatus status =
        net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame);
    if (status == net::DecodeStatus::kOk) {
      EXPECT_LE(consumed, bytes.size());
      net::WireRequest request;
      net::ParseScoreRequest(frame, &request);
    }
  }
}

TEST(NetCodecTest, LimitsBoundItemAndStringSizes) {
  net::CodecLimits limits;
  limits.max_items = 4;
  net::WireRequest request = SampleRequest();  // 10 items > 4 allowed.
  const std::vector<uint8_t> bytes = Encoded(request);
  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);
  net::WireRequest decoded;
  EXPECT_FALSE(net::ParseScoreRequest(frame, &decoded, limits));
  EXPECT_TRUE(net::ParseScoreRequest(frame, &decoded));  // Default limits ok.

  net::CodecLimits tight;
  tight.max_string_bytes = 2;
  EXPECT_FALSE(net::ParseScoreRequest(frame, &decoded, tight));  // "main" > 2.
}

// ---------------------------------------------------------------------------
// Admin frames (stats scrape, remote load)

net::Frame ExtractOne(const std::vector<uint8_t>& bytes) {
  size_t consumed = 0;
  net::Frame frame;
  EXPECT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            net::DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

TEST(NetCodecTest, StatsRequestRoundTrips) {
  net::WireStatsRequest request;
  request.request_id = 21;
  request.format = net::StatsFormat::kJson;
  std::vector<uint8_t> bytes;
  net::EncodeStatsRequest(request, &bytes);
  const net::Frame frame = ExtractOne(bytes);
  EXPECT_EQ(frame.header.type, net::FrameType::kStatsRequest);

  net::WireStatsRequest decoded;
  ASSERT_TRUE(net::ParseStatsRequest(frame, &decoded));
  EXPECT_EQ(decoded.request_id, 21u);
  EXPECT_EQ(decoded.format, net::StatsFormat::kJson);
}

TEST(NetCodecTest, BinaryStatsResponseRoundTripsEveryField) {
  net::WireStatsResponse response;
  response.request_id = 22;
  response.format = net::StatsFormat::kBinary;
  serve::RouterStats& stats = response.stats;
  stats.total.requests = 1000;
  stats.total.fallbacks = 10;
  stats.total.shed = 5;
  stats.total.p50_us = 120.5;
  stats.total.p99_us = 900.25;
  stats.total.mean_us = 150.0;
  stats.total.max_us = 5000;
  stats.total.max_queue_depth = 17;
  stats.total.batches = 64;
  stats.total.batched_lists = 512;
  stats.total.max_batch_size = 8;
  stats.total.batch_size_hist[3] = 12;
  stats.total.latency_hist[0] = 40;
  stats.total.latency_hist[200] = 2;
  stats.cache.hits = 7;
  stats.cache.negative_hits = 3;
  stats.cache.negative_inserts = 4;
  stats.unknown_slot = 2;
  stats.invalid_ids = 9;
  stats.canary_rejected = 1;
  stats.quota_shed = 6;
  stats.has_net = true;
  stats.net.frames_in = 111;
  stats.net.stats_frames = 4;
  stats.net.load_frames = 2;
  stats.net.feedback_frames = 15;
  stats.net.max_inflight_per_conn = 13;
  stats.has_page = true;
  stats.page.pages = 41;
  stats.page.page_lists = 123;
  stats.page.joint_pages = 40;
  stats.page.degraded_pages = 1;
  stats.page.lists_per_page_hist[2] = 39;
  stats.page.lists_per_page_hist[7] = 2;
  stats.page.redundancy_millitopics = 523;
  stats.page.max_lists_per_page = 12;
  stats.has_online = true;
  stats.online.feedback_appended = 90;
  stats.online.feedback_dropped = 1;
  stats.online.feedback_drained = 88;
  stats.online.train_rounds = 11;
  stats.online.trained_lists = 88;
  stats.online.publishes = 3;
  stats.online.publish_rejected = 1;
  stats.online.publish_skipped = 2;
  stats.online.last_published_version = 4;
  serve::RouterStats::SlotEntry slot;
  slot.slot = "main";
  slot.model_name = "rapid-v2";
  slot.version = 5;
  slot.stats.requests = 1000;
  slot.cache.hits = 7;
  stats.slots.push_back(slot);

  std::vector<uint8_t> bytes;
  net::EncodeStatsResponse(response, &bytes);
  const net::Frame frame = ExtractOne(bytes);
  EXPECT_EQ(frame.header.type, net::FrameType::kStatsResponse);

  net::WireStatsResponse decoded;
  ASSERT_TRUE(net::ParseStatsResponse(frame, &decoded));
  EXPECT_EQ(decoded.request_id, 22u);
  EXPECT_EQ(decoded.format, net::StatsFormat::kBinary);
  EXPECT_EQ(decoded.stats.total.requests, 1000u);
  EXPECT_DOUBLE_EQ(decoded.stats.total.p50_us, 120.5);
  EXPECT_DOUBLE_EQ(decoded.stats.total.p99_us, 900.25);
  EXPECT_EQ(decoded.stats.total.max_us, 5000u);
  EXPECT_EQ(decoded.stats.total.max_queue_depth, 17);
  EXPECT_EQ(decoded.stats.total.batch_size_hist[3], 12u);
  EXPECT_EQ(decoded.stats.total.latency_hist[0], 40u);
  EXPECT_EQ(decoded.stats.total.latency_hist[200], 2u);
  EXPECT_EQ(decoded.stats.cache.negative_hits, 3u);
  EXPECT_EQ(decoded.stats.cache.negative_inserts, 4u);
  EXPECT_EQ(decoded.stats.unknown_slot, 2u);
  EXPECT_EQ(decoded.stats.invalid_ids, 9u);
  EXPECT_EQ(decoded.stats.canary_rejected, 1u);
  EXPECT_EQ(decoded.stats.quota_shed, 6u);
  ASSERT_TRUE(decoded.stats.has_net);
  EXPECT_EQ(decoded.stats.net.frames_in, 111u);
  EXPECT_EQ(decoded.stats.net.stats_frames, 4u);
  EXPECT_EQ(decoded.stats.net.load_frames, 2u);
  EXPECT_EQ(decoded.stats.net.feedback_frames, 15u);
  EXPECT_EQ(decoded.stats.net.max_inflight_per_conn, 13);
  ASSERT_TRUE(decoded.stats.has_online);
  EXPECT_EQ(decoded.stats.online.feedback_appended, 90u);
  EXPECT_EQ(decoded.stats.online.feedback_dropped, 1u);
  EXPECT_EQ(decoded.stats.online.feedback_drained, 88u);
  EXPECT_EQ(decoded.stats.online.train_rounds, 11u);
  EXPECT_EQ(decoded.stats.online.trained_lists, 88u);
  EXPECT_EQ(decoded.stats.online.publishes, 3u);
  EXPECT_EQ(decoded.stats.online.publish_rejected, 1u);
  EXPECT_EQ(decoded.stats.online.publish_skipped, 2u);
  EXPECT_EQ(decoded.stats.online.last_published_version, 4u);
  ASSERT_TRUE(decoded.stats.has_page);
  EXPECT_EQ(decoded.stats.page.pages, 41u);
  EXPECT_EQ(decoded.stats.page.page_lists, 123u);
  EXPECT_EQ(decoded.stats.page.joint_pages, 40u);
  EXPECT_EQ(decoded.stats.page.degraded_pages, 1u);
  EXPECT_EQ(decoded.stats.page.lists_per_page_hist[2], 39u);
  EXPECT_EQ(decoded.stats.page.lists_per_page_hist[7], 2u);
  EXPECT_EQ(decoded.stats.page.redundancy_millitopics, 523u);
  EXPECT_EQ(decoded.stats.page.max_lists_per_page, 12);
  ASSERT_EQ(decoded.stats.slots.size(), 1u);
  EXPECT_EQ(decoded.stats.slots[0].slot, "main");
  EXPECT_EQ(decoded.stats.slots[0].model_name, "rapid-v2");
  EXPECT_EQ(decoded.stats.slots[0].version, 5u);
  EXPECT_EQ(decoded.stats.slots[0].stats.requests, 1000u);
  EXPECT_EQ(decoded.stats.slots[0].cache.hits, 7u);
}

TEST(NetCodecTest, JsonStatsResponseCarriesArbitrarilyLongText) {
  net::WireStatsResponse response;
  response.request_id = 23;
  response.format = net::StatsFormat::kJson;
  // Deliberately far beyond max_string_bytes: the JSON rendering is raw
  // payload, not a length-prefixed string.
  response.text.assign(10'000, 'x');
  std::vector<uint8_t> bytes;
  net::EncodeStatsResponse(response, &bytes);
  net::WireStatsResponse decoded;
  ASSERT_TRUE(net::ParseStatsResponse(ExtractOne(bytes), &decoded));
  EXPECT_EQ(decoded.format, net::StatsFormat::kJson);
  EXPECT_EQ(decoded.text, response.text);
}

TEST(NetCodecTest, PrometheusStatsResponseUsesTheTextChannel) {
  net::WireStatsResponse response;
  response.request_id = 25;
  response.format = net::StatsFormat::kPrometheus;
  response.text = "# TYPE rapid_requests_total counter\nrapid_requests_total 5\n";
  std::vector<uint8_t> bytes;
  net::EncodeStatsResponse(response, &bytes);
  net::WireStatsResponse decoded;
  ASSERT_TRUE(net::ParseStatsResponse(ExtractOne(bytes), &decoded));
  EXPECT_EQ(decoded.format, net::StatsFormat::kPrometheus);
  EXPECT_EQ(decoded.text, response.text);
}

TEST(NetCodecTest, LoadFramesRoundTrip) {
  net::WireLoadRequest request;
  request.request_id = 31;
  request.slot = "main";
  request.path = "/snapshots/model.rsnp";
  std::vector<uint8_t> bytes;
  net::EncodeLoadRequest(request, &bytes);
  net::Frame frame = ExtractOne(bytes);
  EXPECT_EQ(frame.header.type, net::FrameType::kLoadSlotRequest);
  net::WireLoadRequest decoded_request;
  ASSERT_TRUE(net::ParseLoadRequest(frame, &decoded_request));
  EXPECT_EQ(decoded_request.request_id, 31u);
  EXPECT_EQ(decoded_request.slot, "main");
  EXPECT_EQ(decoded_request.path, "/snapshots/model.rsnp");

  net::WireLoadResponse response;
  response.request_id = 31;
  response.version = 0;  // A refusal carries its reason.
  response.message = "canary rejected";
  bytes.clear();
  net::EncodeLoadResponse(response, &bytes);
  net::WireLoadResponse decoded_response;
  ASSERT_TRUE(net::ParseLoadResponse(ExtractOne(bytes), &decoded_response));
  EXPECT_EQ(decoded_response.request_id, 31u);
  EXPECT_EQ(decoded_response.version, 0u);
  EXPECT_EQ(decoded_response.message, "canary rejected");
}

TEST(NetCodecTest, OversizedStringsTruncateWithoutDesynchronizingFrames) {
  // A string longer than the 16-bit length prefix can describe must not
  // emit a frame whose prefix disagrees with its payload: the encoder
  // clamps to 64KiB-1 bytes and the next frame on the buffer still parses.
  net::WireLoadRequest request;
  request.request_id = 77;
  request.slot = "main";
  request.path = std::string(100000, 'p');
  std::vector<uint8_t> bytes;
  net::EncodeLoadRequest(request, &bytes);
  net::WireLoadResponse trailer;
  trailer.request_id = 78;
  trailer.version = 5;
  trailer.message = "next frame intact";
  net::EncodeLoadResponse(trailer, &bytes);

  net::CodecLimits big;
  big.max_string_bytes = 1u << 17;  // Decode bound above the encode clamp.

  size_t consumed = 0;
  net::Frame frame;
  ASSERT_EQ(
      net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame, big),
      net::DecodeStatus::kOk);
  net::WireLoadRequest decoded;
  ASSERT_TRUE(net::ParseLoadRequest(frame, &decoded, big));
  EXPECT_EQ(decoded.slot, "main");
  EXPECT_EQ(decoded.path.size(), 65535u);
  EXPECT_EQ(decoded.path, request.path.substr(0, 65535));

  // The frame boundary survived the truncation: the trailing frame is
  // exactly the remaining bytes and decodes cleanly.
  size_t consumed2 = 0;
  net::Frame frame2;
  ASSERT_EQ(net::ExtractFrame(bytes.data() + consumed, bytes.size() - consumed,
                              &consumed2, &frame2, big),
            net::DecodeStatus::kOk);
  EXPECT_EQ(consumed2, bytes.size() - consumed);
  net::WireLoadResponse decoded2;
  ASSERT_TRUE(net::ParseLoadResponse(frame2, &decoded2, big));
  EXPECT_EQ(decoded2.request_id, 78u);
  EXPECT_EQ(decoded2.message, "next frame intact");
}

TEST(NetCodecTest, FeedbackFramesRoundTrip) {
  net::WireFeedback feedback;
  feedback.request_id = 41;
  feedback.slot = "online";
  feedback.model_version = 6;
  feedback.user_id = 42;
  feedback.items = {9, 3, 7, 1};
  feedback.clicks = {1, 0, 0, 1};
  std::vector<uint8_t> bytes;
  net::EncodeFeedback(feedback, &bytes);
  net::Frame frame = ExtractOne(bytes);
  EXPECT_EQ(frame.header.type, net::FrameType::kFeedback);
  net::WireFeedback decoded;
  ASSERT_TRUE(net::ParseFeedback(frame, &decoded));
  EXPECT_EQ(decoded.request_id, 41u);
  EXPECT_EQ(decoded.slot, "online");
  EXPECT_EQ(decoded.model_version, 6u);
  EXPECT_EQ(decoded.user_id, 42);
  EXPECT_EQ(decoded.items, feedback.items);
  EXPECT_EQ(decoded.clicks, feedback.clicks);

  net::WireFeedbackAck ack;
  ack.request_id = 41;
  ack.accepted = false;
  ack.message = "feedback log full or closed";
  bytes.clear();
  net::EncodeFeedbackAck(ack, &bytes);
  net::WireFeedbackAck decoded_ack;
  ASSERT_TRUE(net::ParseFeedbackAck(ExtractOne(bytes), &decoded_ack));
  EXPECT_EQ(decoded_ack.request_id, 41u);
  EXPECT_FALSE(decoded_ack.accepted);
  EXPECT_EQ(decoded_ack.message, "feedback log full or closed");
}

TEST(NetCodecTest, FeedbackClickLabelsMustAlignAndBeBinary) {
  net::WireFeedback feedback;
  feedback.request_id = 42;
  feedback.slot = "online";
  feedback.user_id = 1;
  feedback.items = {5, 6, 7};
  feedback.clicks = {1, 0, 1};
  std::vector<uint8_t> bytes;
  net::EncodeFeedback(feedback, &bytes);

  // Click count sits last on the wire; shrink it so the arrays disagree.
  {
    std::vector<uint8_t> torn = bytes;
    const size_t clicks_count_off = torn.size() - feedback.clicks.size() - 4;
    const uint32_t two = 2;
    std::memcpy(torn.data() + clicks_count_off, &two, sizeof(two));
    // Fix the header length so framing still accepts the shorter payload.
    const uint32_t payload_len =
        static_cast<uint32_t>(torn.size() - 1 - net::kFrameHeaderBytes);
    std::memcpy(torn.data() + 16, &payload_len, 4);
    torn.pop_back();
    net::WireFeedback decoded;
    EXPECT_FALSE(net::ParseFeedback(ExtractOne(torn), &decoded));
  }

  // A click label other than 0/1 is rejected, not clamped.
  {
    std::vector<uint8_t> bad = bytes;
    bad[bad.size() - 1] = 7;
    net::WireFeedback decoded;
    EXPECT_FALSE(net::ParseFeedback(ExtractOne(bad), &decoded));
  }
}

net::WirePageRequest SamplePageRequest(uint64_t id = 31) {
  net::WirePageRequest request;
  request.request_id = id;
  request.slot = "main";
  request.lane = serve::Lane::kLow;
  request.deadline_us = 9000;
  request.user_id = 17;
  request.diversity_budget = 1.75f;
  request.joint = 1;
  request.top_k = 5;
  for (int l = 0; l < 3; ++l) {
    data::ImpressionList list;
    for (int i = 0; i < 4 + l; ++i) {
      list.items.push_back(l * 100 + i);
      list.scores.push_back(0.9f - 0.05f * static_cast<float>(i));
    }
    request.lists.push_back(std::move(list));
  }
  return request;
}

TEST(NetCodecTest, PageRequestRoundTrips) {
  const net::WirePageRequest request = SamplePageRequest();
  std::vector<uint8_t> bytes;
  net::EncodePageRequest(request, &bytes);
  const net::Frame frame = ExtractOne(bytes);
  EXPECT_EQ(frame.header.type, net::FrameType::kPageRequest);

  net::WirePageRequest decoded;
  ASSERT_TRUE(net::ParsePageRequest(frame, &decoded));
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.slot, request.slot);
  EXPECT_EQ(decoded.lane, request.lane);
  EXPECT_EQ(decoded.deadline_us, request.deadline_us);
  EXPECT_EQ(decoded.user_id, request.user_id);
  EXPECT_FLOAT_EQ(decoded.diversity_budget, request.diversity_budget);
  EXPECT_EQ(decoded.joint, request.joint);
  EXPECT_EQ(decoded.top_k, request.top_k);
  ASSERT_EQ(decoded.lists.size(), request.lists.size());
  for (size_t l = 0; l < request.lists.size(); ++l) {
    EXPECT_EQ(decoded.lists[l].items, request.lists[l].items);
    EXPECT_EQ(decoded.lists[l].scores, request.lists[l].scores);
  }
}

TEST(NetCodecTest, PageResponseRoundTrips) {
  net::WirePageResponse response;
  response.request_id = 32;
  response.degraded = true;
  response.model_name = "rapid-v3";
  response.model_version = 12;
  response.server_latency_us = 777;
  response.page_coverage = 0.625f;
  response.cross_list_redundancy = 0.125f;
  response.lists = {{5, 3, 1}, {}, {9, 8, 7, 6}};

  std::vector<uint8_t> bytes;
  net::EncodePageResponse(response, &bytes);
  const net::Frame frame = ExtractOne(bytes);
  EXPECT_EQ(frame.header.type, net::FrameType::kPageResponse);

  net::WirePageResponse decoded;
  ASSERT_TRUE(net::ParsePageResponse(frame, &decoded));
  EXPECT_EQ(decoded.request_id, 32u);
  EXPECT_TRUE(decoded.degraded);
  EXPECT_EQ(decoded.model_name, "rapid-v3");
  EXPECT_EQ(decoded.model_version, 12u);
  EXPECT_EQ(decoded.server_latency_us, 777);
  EXPECT_FLOAT_EQ(decoded.page_coverage, 0.625f);
  EXPECT_FLOAT_EQ(decoded.cross_list_redundancy, 0.125f);
  EXPECT_EQ(decoded.lists, response.lists);
}

TEST(NetCodecTest, PageRequestLimitsListsAndItems) {
  net::CodecLimits limits;
  limits.max_lists_per_page = 2;
  net::WirePageRequest request = SamplePageRequest();  // 3 lists.
  std::vector<uint8_t> bytes;
  net::EncodePageRequest(request, &bytes);
  net::Frame frame = ExtractOne(bytes);
  net::WirePageRequest decoded;
  EXPECT_FALSE(net::ParsePageRequest(frame, &decoded, limits));

  // An empty page carries no lists to score — rejected outright.
  request.lists.clear();
  bytes.clear();
  net::EncodePageRequest(request, &bytes);
  frame = ExtractOne(bytes);
  EXPECT_FALSE(net::ParsePageRequest(frame, &decoded));

  net::CodecLimits tight;
  tight.max_items = 3;
  net::WirePageRequest big = SamplePageRequest();  // Lists of 4..6 items.
  bytes.clear();
  net::EncodePageRequest(big, &bytes);
  frame = ExtractOne(bytes);
  EXPECT_FALSE(net::ParsePageRequest(frame, &decoded, tight));
}

TEST(NetCodecTest, TruncatedStatsResponseFailsCleanly) {
  net::WireStatsResponse response;
  response.request_id = 24;
  response.format = net::StatsFormat::kBinary;
  response.stats.total.requests = 5;
  std::vector<uint8_t> full;
  net::EncodeStatsResponse(response, &full);
  // Chop the payload but fix up the header length so framing still parses:
  // strict payload decoding must reject every truncation, never crash.
  for (size_t cut = net::kFrameHeaderBytes; cut < full.size(); cut += 7) {
    std::vector<uint8_t> bytes(full.begin(), full.begin() + static_cast<ptrdiff_t>(cut));
    const uint32_t payload_len = static_cast<uint32_t>(cut - net::kFrameHeaderBytes);
    std::memcpy(bytes.data() + 16, &payload_len, 4);
    size_t consumed = 0;
    net::Frame frame;
    ASSERT_EQ(net::ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
              net::DecodeStatus::kOk);
    net::WireStatsResponse decoded;
    EXPECT_FALSE(net::ParseStatsResponse(frame, &decoded)) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace rapid
