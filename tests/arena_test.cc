// Tests of the thread-local scratch arena (nn/arena.h) and the
// zero-allocation serving contract it exists for: once a worker thread has
// served one batch (chunks mapped, caller scratch sized), a repeat
// `RerankBatchInto` on the same shapes must perform ZERO heap allocations
// and map zero new chunks — every temporary comes from rewound arena
// memory. Run with RAPID_ARENA=0 these tests skip (the arena is a
// transparent optimization, not a semantic layer).

#include "nn/arena.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "click/dcm.h"
#include "datagen/simulator.h"
#include "nn/variable.h"
#include "rerank/neural_models.h"

namespace rapid {
namespace {

namespace arena = rapid::nn::arena;

TEST(ArenaTest, ScopeRewindsBytesAndRetainsChunks) {
  if (!arena::Enabled()) GTEST_SKIP() << "arena disabled";
  // Warm one chunk so the steady-state claim below is about reuse.
  {
    arena::ArenaScope warm;
    std::vector<float> filler(1024);
    filler[0] = 1.0f;
  }
  const size_t bytes_before = arena::ThreadBytesInUse();
  const arena::ThreadCounters warm_counters = arena::CountersThisThread();
  {
    arena::ArenaScope scope;
    std::vector<float> a(4096), b(512);
    a[0] = b[0] = 1.0f;
    EXPECT_GT(arena::ThreadBytesInUse(), bytes_before);
    {
      arena::ArenaScope nested;
      std::vector<float> c(2048);
      c[0] = 1.0f;
    }
  }
  EXPECT_EQ(arena::ThreadBytesInUse(), bytes_before);
  const arena::ThreadCounters after = arena::CountersThisThread();
  EXPECT_GT(after.arena_allocs, warm_counters.arena_allocs);
  EXPECT_EQ(after.chunk_mallocs, warm_counters.chunk_mallocs)
      << "steady-state scopes must reuse retained chunks";
  EXPECT_GE(arena::ThreadHighWaterBytes(), 4096 * sizeof(float));
}

TEST(ArenaTest, AllocationsOutsideScopesStayOnHeap) {
  const arena::ThreadCounters before = arena::CountersThisThread();
  {
    std::vector<float> v(1024);
    v[0] = 1.0f;
  }
  const arena::ThreadCounters after = arena::CountersThisThread();
  EXPECT_GT(after.heap_allocs, before.heap_allocs);
  EXPECT_GT(after.heap_frees, before.heap_frees);
}

TEST(ArenaTest, GlobalStatsAggregateThreadCounters) {
  if (!arena::Enabled()) GTEST_SKIP() << "arena disabled";
  {
    arena::ArenaScope scope;
    std::vector<float> v(256);
    v[0] = 1.0f;
  }
  const arena::GlobalStats stats = arena::GlobalArenaStats();
  EXPECT_GT(stats.arena_allocs, 0u);
  EXPECT_GT(stats.reserved_bytes, 0u);
  EXPECT_GT(stats.high_water_bytes, 0u);
}

class ArenaServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 12;
    cfg.num_items = 100;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 303);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(4);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      lists_.push_back(std::move(list));
    }
    rerank::NeuralRerankConfig mcfg;
    mcfg.epochs = 1;
    mcfg.hidden_dim = 8;
    model_ = std::make_unique<rerank::PrmReranker>(mcfg);
    model_->Fit(data_, lists_, 11);
  }

  std::vector<const data::ImpressionList*> Ptrs() const {
    std::vector<const data::ImpressionList*> out;
    for (const data::ImpressionList& list : lists_) out.push_back(&list);
    return out;
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> lists_;
  std::unique_ptr<rerank::PrmReranker> model_;
};

// The tentpole assertion: a warm batched rerank is allocation-free. The
// first call sizes the caller scratch, the thread-local score buffers, and
// the arena chunks; from the second call on, the hot path must touch
// neither malloc nor a new chunk.
TEST_F(ArenaServingTest, WarmRerankBatchPerformsZeroHeapAllocations) {
  if (!arena::Enabled()) GTEST_SKIP() << "arena disabled";
  const std::vector<const data::ImpressionList*> ptrs = Ptrs();
  std::vector<std::vector<int>> out;
  model_->RerankBatchInto(data_, ptrs, &out);  // Warm-up call.
  model_->RerankBatchInto(data_, ptrs, &out);  // Settle any lazy statics.

  const arena::ThreadCounters before = arena::CountersThisThread();
  model_->RerankBatchInto(data_, ptrs, &out);
  const arena::ThreadCounters after = arena::CountersThisThread();

  EXPECT_EQ(after.heap_allocs, before.heap_allocs)
      << "warm RerankBatchInto allocated on the heap";
  EXPECT_EQ(after.heap_frees, before.heap_frees);
  EXPECT_EQ(after.chunk_mallocs, before.chunk_mallocs)
      << "warm RerankBatchInto grew the arena";
  EXPECT_GT(after.arena_allocs, before.arena_allocs)
      << "the forward pass should run out of the arena";
}

// Scratch reuse must not leak stale results: a warm output vector with
// wrong sizes/contents is fully overwritten and matches a fresh call.
TEST_F(ArenaServingTest, ScratchReuseMatchesFreshCall) {
  const std::vector<const data::ImpressionList*> ptrs = Ptrs();
  const std::vector<std::vector<int>> fresh = model_->RerankBatch(data_, ptrs);

  std::vector<std::vector<int>> stale(3);
  stale[0].assign(100, -7);  // Wrong count, wrong sizes, stale values.
  model_->RerankBatchInto(data_, ptrs, &stale);
  EXPECT_EQ(stale, fresh);

  // And batched output still matches the per-list path bit for bit.
  for (size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(fresh[i], model_->Rerank(data_, *ptrs[i])) << "list " << i;
  }
}

// Scores must be identical with and without the arena's no-grad inference
// path against a plain training-style forward: no-grad mode changes graph
// bookkeeping, never values.
TEST_F(ArenaServingTest, NoGradForwardMatchesGradForward) {
  const data::ImpressionList& list = lists_.front();
  const std::vector<float> inference = model_->ScoreList(data_, list);
  std::vector<float> with_grad;
  {
    // ScoreList runs under NoGradScope internally; forcing grad mode on
    // around it must not change anything (the scope nests).
    ASSERT_TRUE(nn::GradEnabled());
    with_grad = model_->ScoreList(data_, list);
  }
  EXPECT_EQ(inference, with_grad);
}

}  // namespace
}  // namespace rapid
