#include <gtest/gtest.h>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "rerank/neural_models.h"

namespace rapid {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 20;
    cfg.num_items = 120;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 101);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(2);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }
  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

TEST_F(PersistenceTest, PrmSaveLoadPreservesScores) {
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 1;
  rerank::PrmReranker trained(cfg);
  trained.Fit(data_, train_, 5);
  const std::string path = ::testing::TempDir() + "/prm.bin";
  ASSERT_TRUE(trained.SaveModel(path));

  rerank::PrmReranker restored(cfg);
  ASSERT_TRUE(restored.LoadModel(data_, path));
  const auto a = trained.ScoreList(data_, train_[0]);
  const auto b = restored.ScoreList(data_, train_[0]);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST_F(PersistenceTest, RapidSaveLoadPreservesScoresAndTheta) {
  core::RapidConfig cfg;
  cfg.train.epochs = 1;
  cfg.hidden_dim = 8;
  core::RapidReranker trained(cfg);
  trained.Fit(data_, train_, 6);
  const std::string path = ::testing::TempDir() + "/rapid.bin";
  ASSERT_TRUE(trained.SaveModel(path));

  core::RapidReranker restored(cfg);
  ASSERT_TRUE(restored.LoadModel(data_, path));
  EXPECT_EQ(trained.Rerank(data_, train_[1]),
            restored.Rerank(data_, train_[1]));
  EXPECT_EQ(trained.PreferenceDistribution(data_, 0),
            restored.PreferenceDistribution(data_, 0));
}

TEST_F(PersistenceTest, MismatchedConfigurationFailsToLoad) {
  core::RapidConfig cfg;
  cfg.train.epochs = 1;
  cfg.hidden_dim = 8;
  core::RapidReranker trained(cfg);
  trained.Fit(data_, train_, 7);
  const std::string path = ::testing::TempDir() + "/rapid2.bin";
  ASSERT_TRUE(trained.SaveModel(path));

  core::RapidConfig other = cfg;
  other.hidden_dim = 16;  // Different shapes.
  core::RapidReranker restored(other);
  EXPECT_FALSE(restored.LoadModel(data_, path));
}

TEST_F(PersistenceTest, LoadFromMissingFileFails) {
  rerank::NeuralRerankConfig cfg;
  rerank::DlcmReranker model(cfg);
  EXPECT_FALSE(model.LoadModel(data_, "/nonexistent/model.bin"));
}

TEST_F(PersistenceTest, PairwiseLossTrainsDesa) {
  rerank::NeuralRerankConfig cfg = rerank::DesaReranker::PairwiseConfig();
  cfg.epochs = 2;
  EXPECT_EQ(cfg.loss, rerank::RerankLoss::kPairwiseLogistic);
  rerank::DesaReranker desa(cfg);
  desa.Fit(data_, train_, 8);
  EXPECT_TRUE(std::isfinite(desa.final_loss()));
  EXPECT_GT(desa.final_loss(), 0.0f);
  auto out = desa.Rerank(data_, train_[0]);
  EXPECT_EQ(out.size(), train_[0].items.size());
}

TEST_F(PersistenceTest, PairwiseLossDecreasesWithTraining) {
  rerank::NeuralRerankConfig cfg = rerank::DesaReranker::PairwiseConfig();
  cfg.epochs = 1;
  rerank::DesaReranker one(cfg);
  one.Fit(data_, train_, 9);
  cfg.epochs = 6;
  rerank::DesaReranker six(cfg);
  six.Fit(data_, train_, 9);
  EXPECT_LT(six.final_loss(), one.final_loss());
}

TEST_F(PersistenceTest, PairwiseFallsBackOnDegenerateLists) {
  // All-clicked and no-clicked lists have no pairs; training must still
  // run via the pointwise fallback.
  std::vector<data::ImpressionList> degenerate = train_;
  for (auto& list : degenerate) {
    std::fill(list.clicks.begin(), list.clicks.end(), 0);
  }
  rerank::NeuralRerankConfig cfg = rerank::DesaReranker::PairwiseConfig();
  cfg.epochs = 1;
  rerank::DesaReranker desa(cfg);
  desa.Fit(data_, degenerate, 10);
  EXPECT_TRUE(std::isfinite(desa.final_loss()));
}

}  // namespace
}  // namespace rapid
