// Edge-case and failure-injection tests across modules: degenerate lists,
// truncated histories, extreme click-model settings, and metric boundaries.

#include <gtest/gtest.h>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/history.h"
#include "datagen/simulator.h"
#include "eval/pipeline.h"
#include "metrics/metrics.h"
#include "rerank/dpp.h"
#include "rerank/mmr.h"
#include "rerank/neural_models.h"
#include "rerank/pdgan.h"
#include "rankers/svmrank.h"
#include "rerank/ssd.h"

namespace rapid {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 15;
    cfg.num_items = 100;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 111);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(1);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 8);
      for (int i = 0; i < 8; ++i) list.scores.push_back(1.0f - 0.1f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }
  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

TEST_F(EdgeCaseTest, SingleItemListAllMethods) {
  data::ImpressionList one;
  one.user_id = 0;
  one.items = {5};
  one.scores = {1.0f};
  rerank::MmrReranker mmr;
  rerank::AdpMmrReranker adp;
  rerank::DppReranker dpp;
  rerank::SsdReranker ssd;
  rerank::PdGanReranker pdgan;
  for (rerank::Reranker* m : std::initializer_list<rerank::Reranker*>{
           &mmr, &adp, &dpp, &ssd, &pdgan}) {
    EXPECT_EQ(m->Rerank(data_, one), std::vector<int>{5}) << m->name();
  }
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 1;
  rerank::PrmReranker prm(cfg);
  prm.Fit(data_, train_, 1);
  EXPECT_EQ(prm.Rerank(data_, one).size(), 1u);
}

TEST_F(EdgeCaseTest, RapidWithDeeperSequencesThanHistory) {
  // D larger than the entire history: sequences are all short; masked
  // LSTM must handle fully padded steps.
  core::RapidConfig cfg;
  cfg.train.epochs = 1;
  cfg.hidden_dim = 8;
  cfg.max_seq_len = 50;
  core::RapidReranker model(cfg);
  model.Fit(data_, train_, 2);
  auto theta = model.PreferenceDistribution(data_, 0);
  for (float t : theta) EXPECT_TRUE(std::isfinite(t));
}

TEST_F(EdgeCaseTest, MetricsWithKLargerThanList) {
  std::vector<int> clicks = {1, 0, 1};
  EXPECT_FLOAT_EQ(metrics::ClickAtK(clicks, 100), 2.0f);
  EXPECT_GT(metrics::NdcgAtK(clicks, 100), 0.0f);
  std::vector<int> items = {0, 1, 2};
  EXPECT_GT(metrics::DivAtK(data_, items, 100), 0.0f);
  EXPECT_FLOAT_EQ(metrics::RevAtK(data_, items, clicks, 100), 0.0f);
}

TEST_F(EdgeCaseTest, DcmLambdaZeroStillValid) {
  click::DcmConfig cfg;
  cfg.lambda = 0.0f;  // Clicks driven purely by personalized diversity.
  click::GroundTruthClickModel dcm(&data_, cfg);
  std::mt19937_64 rng(3);
  auto clicks = dcm.SimulateClicks(0, {1, 2, 3, 4, 5}, rng);
  EXPECT_EQ(clicks.size(), 5u);
  for (int pos = 0; pos < 5; ++pos) {
    const float a = dcm.Attraction(0, {1, 2, 3, 4, 5}, pos);
    EXPECT_GE(a, 0.0f);
    EXPECT_LE(a, 1.0f);
  }
}

TEST_F(EdgeCaseTest, EstimatedDcmWithNoClicksAtAll) {
  std::vector<data::ImpressionList> logs = train_;
  for (auto& list : logs) {
    std::fill(list.clicks.begin(), list.clicks.end(), 0);
  }
  click::EstimatedDcm est;
  est.Fit(data_, logs);
  const float s = est.Satisfaction({1, 2, 3}, 3);
  EXPECT_GE(s, 0.0f);
  EXPECT_LE(s, 1.0f);
}

TEST_F(EdgeCaseTest, EstimatedDcmWithEmptyLogs) {
  click::EstimatedDcm est;
  est.Fit(data_, {});
  EXPECT_GT(est.Termination(1), 0.0f);
  EXPECT_GE(est.Satisfaction({1, 2}, 2), 0.0f);
}

TEST_F(EdgeCaseTest, DppGreedyWithZeroKernel) {
  // All-zero kernel: nothing has positive volume; output must still be a
  // full permutation (fallback append).
  std::vector<std::vector<float>> kernel(4, std::vector<float>(4, 0.0f));
  auto order = rerank::DppReranker::GreedyMapInference(kernel, 4);
  std::set<int> uniq(order.begin(), order.end());
  EXPECT_EQ(order.size(), 4u);
  EXPECT_EQ(uniq.size(), 4u);
}

TEST_F(EdgeCaseTest, HistorySplitUserWithNarrowHistory) {
  // All users have histories; verify per-topic split handles topics with
  // zero items for highly focused users.
  for (int u = 0; u < 15; ++u) {
    auto seqs = data::SplitHistoryByTopic(data_, u, 5);
    int nonempty = 0;
    for (const auto& s : seqs) {
      if (!s.empty()) ++nonempty;
    }
    EXPECT_GE(nonempty, 1);
  }
}

TEST_F(EdgeCaseTest, NeuralRerankerUntrainedListLongerThanTraining) {
  // Score a list longer than any seen in training (position encodings and
  // attention must extend).
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 1;
  rerank::PrmReranker prm(cfg);
  prm.Fit(data_, train_, 4);
  data::ImpressionList longer;
  longer.user_id = 0;
  for (int i = 0; i < 30; ++i) {
    longer.items.push_back(i % 100);
    longer.scores.push_back(1.0f - 0.01f * i);
  }
  EXPECT_EQ(prm.Rerank(data_, longer).size(), 30u);
}

TEST_F(EdgeCaseTest, EnvironmentWithListLenLongerThanPool) {
  eval::PipelineConfig cfg;
  cfg.sim.kind = data::DatasetKind::kTaobao;
  cfg.sim.num_users = 10;
  cfg.sim.num_items = 80;
  cfg.sim.candidates_per_request = 8;
  cfg.list_len = 20;  // Longer than the candidate pool.
  eval::Environment env(cfg, std::make_unique<rank::SvmRankRanker>());
  for (const auto& list : env.test_lists()) {
    EXPECT_EQ(list.items.size(), 8u);
  }
  rerank::InitReranker init;
  eval::MethodMetrics m = eval::EvaluateReranker(env, init);
  EXPECT_GE(m.Mean("click@10"), 0.0);
}

}  // namespace
}  // namespace rapid
