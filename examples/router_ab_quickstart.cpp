// Two-slot A/B serving quickstart: one router, one shared worker pool, two
// model slots compared live.
//
// 1. Train two RAPID variants offline (the probabilistic head as control,
//    the deterministic ablation as treatment) and snapshot both.
// 2. Stand up a ServingRouter and LoadSlot each snapshot into its own
//    named slot: "control" and "treatment".
// 3. Split a request stream across the slots and read the per-slot stats —
//    the A/B readout.
// 4. Hot-swap the treatment slot with a retrained snapshot while traffic
//    flows; responses are version-stamped, so the cutover point is exact.
// 5. Guard the swap with a canary probe (recorded ScoreList output) so a
//    corrupt-but-parseable snapshot is rejected before publish, and serve
//    repeat requests from the router-level result cache.
//
// Build & run:  ./build/examples/router_ab_quickstart

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "rankers/din.h"
#include "serve/router.h"
#include "serve/snapshot.h"

int main() {
  using namespace rapid;

  // ---- Offline: train the two arms --------------------------------------
  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 60;
  config.sim.num_items = 400;
  config.dcm.lambda = 0.9f;
  config.seed = 42;

  std::printf("Building environment and training both arms...\n");
  rank::DinConfig din_config;
  din_config.epochs = 1;
  eval::Environment env(config, std::make_unique<rank::DinRanker>(din_config));

  const std::string control_path = "/tmp/rapid_ab_control.rsnp";
  const std::string treatment_path = "/tmp/rapid_ab_treatment.rsnp";
  const std::string treatment_v2_path = "/tmp/rapid_ab_treatment_v2.rsnp";
  {
    core::RapidConfig cfg;
    cfg.train.epochs = 2;
    core::RapidReranker control(cfg);
    control.Fit(env.dataset(), env.train_lists(), /*seed=*/7);
    cfg.head = core::OutputHead::kDeterministic;
    core::RapidReranker treatment(cfg);
    treatment.Fit(env.dataset(), env.train_lists(), /*seed=*/7);
    // The "retrained" treatment that will be hot-swapped in mid-stream.
    core::RapidReranker treatment_v2(cfg);
    treatment_v2.Fit(env.dataset(), env.train_lists(), /*seed=*/8);
    if (!serve::Snapshot::Save(control_path, control, env.dataset()) ||
        !serve::Snapshot::Save(treatment_path, treatment, env.dataset()) ||
        !serve::Snapshot::Save(treatment_v2_path, treatment_v2,
                               env.dataset())) {
      std::printf("snapshot save failed\n");
      return 1;
    }
  }

  // ---- Online: one router, two slots ------------------------------------
  serve::RouterConfig router_config;
  router_config.num_threads = 4;
  router_config.admission.policy = serve::AdmissionPolicy::kShed;
  router_config.admission.low_lane_watermark = 128;
  // Result cache: repeat (user, candidate-set) requests against the same
  // published version are answered inline, bypassing the queue.
  router_config.cache.enabled = true;
  router_config.cache.capacity = 256;
  serve::ServingRouter router(env.dataset(), router_config);
  if (router.LoadSlot("control", control_path) == 0 ||
      router.LoadSlot("treatment", treatment_path) == 0) {
    std::printf("LoadSlot failed\n");
    return 1;
  }

  // Canary-guard the treatment slot: record the retrained model's scores
  // on one probe list; LoadSlot re-scores every candidate snapshot against
  // the probe before publishing it.
  {
    const auto v2 = serve::Snapshot::Load(treatment_v2_path, env.dataset());
    if (v2 == nullptr) {
      std::printf("snapshot reload failed\n");
      return 1;
    }
    serve::CanaryProbe probe;
    probe.list = env.test_lists().front();
    probe.expected_scores = v2->ScoreList(env.dataset(), probe.list);
    router.SetCanary("treatment", probe);
  }
  std::printf("Serving slots:");
  for (const std::string& slot : router.slots()) {
    std::printf(" %s(v%llu)", slot.c_str(),
                static_cast<unsigned long long>(router.SlotVersion(slot)));
  }
  std::printf("\n");

  // ---- Split traffic 50/50, hot-swap the treatment mid-stream -----------
  const int rounds = 3;
  std::vector<std::future<serve::RouterResponse>> futures;
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < env.test_lists().size(); ++i) {
      serve::RouterRequest req;
      req.slot = (i % 2 == 0) ? "control" : "treatment";
      req.lane = serve::Lane::kHigh;
      req.list = env.test_lists()[i];
      futures.push_back(router.Submit(std::move(req)));
    }
    if (round == 0) {
      // Ship the retrained treatment while requests are in flight:
      // in-flight requests finish on v1, later dequeues see v2.
      const uint64_t version =
          router.LoadSlot("treatment", treatment_v2_path);
      std::printf("Hot-swapped treatment to v%llu mid-stream\n",
                  static_cast<unsigned long long>(version));
    }
  }

  uint64_t treatment_v1 = 0, treatment_v2 = 0;
  for (auto& f : futures) {
    const serve::RouterResponse response = f.get();
    if (response.model_name.empty()) continue;
    if (response.model_version == 1) {
      // Control stays at v1 throughout; only treatment republishes.
    }
    if (response.model_version >= 2) {
      ++treatment_v2;
    } else if (response.degraded == false && response.model_version == 1) {
      ++treatment_v1;
    }
  }
  std::printf("Responses on pre-swap versions: %llu, on the swapped v2: "
              "%llu (every response names its model — no torn reads)\n",
              static_cast<unsigned long long>(treatment_v1),
              static_cast<unsigned long long>(treatment_v2));

  // ---- Result cache and canary in action --------------------------------
  // The same request twice: the first answer was computed by a worker (and
  // inserted), the repeat is served inline from the cache — same items,
  // same version stamp, a fraction of the latency.
  {
    serve::RouterRequest req;
    req.slot = "control";
    req.list = env.test_lists().front();
    const serve::RouterResponse first = router.Submit(req).get();
    const serve::RouterResponse repeat = router.Submit(req).get();
    std::printf("Repeat request: cache_hit=%s, %lldus (first %lldus), "
                "same v%llu answer\n",
                repeat.cache_hit ? "yes" : "no",
                static_cast<long long>(repeat.latency_us),
                static_cast<long long>(first.latency_us),
                static_cast<unsigned long long>(repeat.model_version));
  }
  // A snapshot that parses but scores differently from the recorded probe
  // (here: the control arm's weights) is rejected before publish — the
  // treatment slot keeps serving its current version.
  if (router.LoadSlot("treatment", control_path) == 0) {
    std::printf("Canary rejected the mismatched snapshot; treatment still "
                "v%llu\n",
                static_cast<unsigned long long>(
                    router.SlotVersion("treatment")));
  }
  router.Shutdown();

  // ---- The A/B readout ---------------------------------------------------
  const serve::RouterStats stats = router.stats();
  std::printf("\nPer-slot serving stats:\n%s", stats.ToTable().c_str());
  bool both_served = stats.slots.size() == 2;
  for (const auto& slot : stats.slots) {
    both_served = both_served && slot.stats.requests > 0;
  }
  return both_served ? 0 : 1;
}
