// Serving quickstart: the offline -> online hand-off in one file.
//
// 1. Train RAPID on a small synthetic environment (offline).
// 2. Persist it as a self-describing snapshot (config header + weights).
// 3. Rehydrate the snapshot as a serving process would — no training code,
//    no knowledge of the training-time configuration.
// 4. Stand up a ServingEngine (worker pool + micro-batching + deadline
//    fallback) and answer concurrent re-ranking requests.
//
// Build & run:  ./build/examples/serve_quickstart

#include <cstdio>
#include <future>
#include <vector>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "rankers/din.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

int main() {
  using namespace rapid;

  // ---- Offline: train ---------------------------------------------------
  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 60;
  config.sim.num_items = 400;
  config.dcm.lambda = 0.9f;
  config.seed = 42;

  std::printf("Building environment and training RAPID...\n");
  rank::DinConfig din_config;
  din_config.epochs = 1;
  eval::Environment env(config, std::make_unique<rank::DinRanker>(din_config));
  core::RapidConfig rapid_config;
  rapid_config.train.epochs = 4;
  core::RapidReranker trained(rapid_config);
  trained.Fit(env.dataset(), env.train_lists(), /*seed=*/7);

  // ---- Snapshot: save, then load as a fresh process would ---------------
  const std::string path = "/tmp/rapid_serve_quickstart.rsnp";
  if (!serve::Snapshot::Save(path, trained, env.dataset())) {
    std::printf("snapshot save failed\n");
    return 1;
  }
  core::RapidConfig on_disk;
  serve::Snapshot::ReadConfig(path, &on_disk);
  std::printf("Snapshot written to %s (model %s, hidden_dim=%d)\n", path.c_str(),
              trained.name().c_str(), on_disk.hidden_dim);

  const auto model = serve::Snapshot::Load(path, env.dataset());
  if (model == nullptr) {
    std::printf("snapshot load failed\n");
    return 1;
  }

  // ---- Online: serve ----------------------------------------------------
  serve::ServingConfig serving;
  serving.num_threads = 4;
  serving.max_batch = 8;
  serving.max_wait_us = 200;
  serving.deadline_us = 50'000;  // 50ms, then fall back to the initial order.
  serve::ServingEngine engine(env.dataset(), *model, serving);

  std::printf("Submitting %zu concurrent requests on %d workers...\n",
              env.test_lists().size(), serving.num_threads);
  std::vector<std::future<serve::RerankResponse>> futures;
  for (const data::ImpressionList& list : env.test_lists()) {
    futures.push_back(engine.Submit(list));
  }

  // First response in detail: the engine's answer must equal a direct call.
  serve::RerankResponse first = futures.front().get();
  const data::ImpressionList& request = env.test_lists().front();
  const bool identical = first.items == model->Rerank(env.dataset(), request);
  std::printf("First response: %zu items in %lldus, degraded=%d, "
              "identical to direct Rerank: %s\n",
              first.items.size(), static_cast<long long>(first.latency_us),
              first.degraded ? 1 : 0, identical ? "yes" : "NO");
  for (auto& f : futures) {
    if (f.valid()) f.wait();
  }
  engine.Shutdown();

  std::printf("\nServing metrics:\n%s", engine.stats().ToTable().c_str());
  return identical ? 0 : 1;
}
