// App-store scenario: one-hot app categories, per-item bid prices, and the
// platform objective is total revenue (rev@k), as in the paper's
// industrial evaluation (Table III). Shows how re-ranking with
// personalized diversification lifts revenue over the production-style
// initial ranking.
//
// Build & run:  ./build/examples/app_store_revenue

#include <cstdio>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "eval/table.h"
#include "rankers/din.h"
#include "rerank/neural_models.h"

int main() {
  using namespace rapid;

  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kAppStore;
  config.sim.num_users = 100;
  config.sim.num_items = 600;
  config.sim.rerank_lists_per_user = 6;
  config.dcm.lambda = 0.9f;  // Ads-like: clicks mostly relevance-driven.
  config.seed = 13;

  std::printf("App-store scenario: 23 one-hot categories, bid prices.\n");
  rank::DinConfig din_config;
  din_config.epochs = 1;
  eval::Environment env(config,
                        std::make_unique<rank::DinRanker>(din_config));

  rerank::InitReranker init;
  rerank::NeuralRerankConfig ncfg;
  ncfg.epochs = 8;
  rerank::PrmReranker prm(ncfg);
  core::RapidConfig rcfg;
  rcfg.train.epochs = 8;
  core::RapidReranker rapid(rcfg);

  eval::ResultTable table({"click@5", "rev@5", "click@10", "rev@10",
                           "div@10"});
  table.AddRow(eval::EvaluateReranker(env, init));
  std::printf("Fitting PRM...\n");
  table.AddRow(eval::FitAndEvaluate(env, prm));
  std::printf("Fitting RAPID...\n");
  table.AddRow(eval::FitAndEvaluate(env, rapid));
  std::printf("\n%s\n", table.Render("AppStoreSim revenue study").c_str());

  const double init_rev = table.rows()[0].Mean("rev@10");
  const double rapid_rev = table.rows()[2].Mean("rev@10");
  std::printf(
      "Revenue lift of RAPID over the production initial ranking: %+.2f%%\n",
      100.0 * (rapid_rev - init_rev) / init_rev);
  std::printf(
      "(Each unit of rev@k is one simulated bid-weighted click; the paper "
      "reports the\n same metric on Huawei App Store logs.)\n");
  return 0;
}
