// Personalized vs uniform diversification: the paper's central claim is
// that diversifying *equally for everyone* hurts focused users, while
// personalized diversification adapts. This example splits test users into
// focused / medium / diverse terciles by their (hidden) diversity appetite
// and reports per-group utility and diversity for a uniform diversifier
// (MMR with a fixed tradeoff) and RAPID.
//
// Build & run:  ./build/examples/personalized_vs_uniform

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "metrics/metrics.h"
#include "rankers/din.h"
#include "rerank/mmr.h"

int main() {
  using namespace rapid;

  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 120;
  config.sim.num_items = 700;
  config.sim.rerank_lists_per_user = 6;
  config.sim.test_lists_per_user = 3;
  config.dcm.lambda = 0.6f;
  config.seed = 29;

  rank::DinConfig din_config;
  din_config.epochs = 1;
  eval::Environment env(config,
                        std::make_unique<rank::DinRanker>(din_config));
  const data::Dataset& data = env.dataset();

  rerank::MmrReranker uniform_mmr(/*trade=*/0.5f);  // Diversify everyone.
  core::RapidConfig rcfg;
  rcfg.train.epochs = 8;
  core::RapidReranker rapid(rcfg);
  std::printf("Fitting RAPID...\n");
  rapid.Fit(data, env.train_lists(), 3);

  // Appetite terciles.
  std::vector<float> appetites;
  for (const data::User& u : data.users) {
    appetites.push_back(u.diversity_appetite);
  }
  std::sort(appetites.begin(), appetites.end());
  const float lo = appetites[appetites.size() / 3];
  const float hi = appetites[2 * appetites.size() / 3];
  auto group_of = [&](int user) {
    const float a = data.users[user].diversity_appetite;
    return a < lo ? 0 : (a < hi ? 1 : 2);
  };
  const char* group_names[3] = {"focused", "medium", "diverse"};

  struct Acc {
    double clicks = 0.0, div = 0.0;
    int n = 0;
  };
  std::map<std::string, Acc> acc[3];

  std::printf("Evaluating per user group...\n");
  for (size_t r = 0; r < env.test_lists().size(); ++r) {
    const data::ImpressionList& list = env.test_lists()[r];
    const int g = group_of(list.user_id);
    struct Run {
      const char* name;
      std::vector<int> order;
    };
    const Run runs[3] = {
        {"Init", list.items},
        {"uniform MMR", uniform_mmr.Rerank(data, list)},
        {"RAPID", rapid.Rerank(data, list)},
    };
    for (const Run& run : runs) {
      // Expected clicks (analytic, no sampling noise) + topic coverage.
      Acc& a = acc[g][run.name];
      a.clicks += env.dcm().ExpectedClicks(list.user_id, run.order, 10);
      a.div += metrics::DivAtK(data, run.order, 10);
      a.n += 1;
    }
  }

  std::printf("\nExpected clicks@10 / div@10 by user group:\n");
  std::printf("%-10s", "");
  for (const char* method : {"Init", "uniform MMR", "RAPID"}) {
    std::printf("  %-16s", method);
  }
  std::printf("\n");
  for (int g = 0; g < 3; ++g) {
    std::printf("%-10s", group_names[g]);
    for (const char* method : {"Init", "uniform MMR", "RAPID"}) {
      const Acc& a = acc[g][method];
      std::printf("  %5.3f / %-8.3f", a.clicks / a.n, a.div / a.n);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: uniform diversification pays a utility toll on focused "
      "users;\nRAPID diversifies where (and only where) the user wants "
      "it.\n");
  return 0;
}
