// News-feed scenario (the paper's lambda = 0.5 setting): user clicks depend
// on diversity as much as relevance, as in feed recommendation. Compares a
// purely relevance-oriented re-ranker (PRM), a uniform diversifier (DPP)
// and RAPID, and shows the per-position topic mix each produces for the
// same user — the motivating Figure 1 of the paper, rendered in text.
//
// Build & run:  ./build/examples/news_feed_diversification

#include <cstdio>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "eval/table.h"
#include "rankers/din.h"
#include "rerank/dpp.h"
#include "rerank/neural_models.h"

int main() {
  using namespace rapid;

  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kMovieLens;  // 20 topics, multi-hot.
  config.sim.num_users = 100;
  config.sim.num_items = 600;
  config.sim.rerank_lists_per_user = 6;
  config.dcm.lambda = 0.5f;  // Diversity matters as much as relevance.
  config.seed = 11;

  std::printf("News-feed scenario: lambda=0.5 (diversity-heavy clicks).\n");
  rank::DinConfig din_config;
  din_config.epochs = 1;
  eval::Environment env(config,
                        std::make_unique<rank::DinRanker>(din_config));

  rerank::NeuralRerankConfig ncfg;
  ncfg.epochs = 8;
  rerank::PrmReranker prm(ncfg);
  rerank::DppReranker dpp;
  core::RapidConfig rcfg;
  rcfg.train.epochs = 8;
  core::RapidReranker rapid(rcfg);

  eval::ResultTable table({"click@10", "ndcg@10", "div@10", "satis@10"});
  std::printf("Fitting PRM...\n");
  table.AddRow(eval::FitAndEvaluate(env, prm));
  std::printf("Running DPP...\n");
  table.AddRow(eval::FitAndEvaluate(env, dpp));
  std::printf("Fitting RAPID...\n");
  table.AddRow(eval::FitAndEvaluate(env, rapid));
  std::printf("\n%s\n", table.Render("news feed, MovieLensSim").c_str());

  // Show one diverse user's feed under each strategy (topic letters).
  int user = 0;
  for (const data::User& u : env.dataset().users) {
    if (u.diversity_appetite >
        env.dataset().users[user].diversity_appetite) {
      user = u.id;
    }
  }
  const data::ImpressionList* list = nullptr;
  for (const auto& l : env.test_lists()) {
    if (l.user_id == user) list = &l;
  }
  if (list != nullptr) {
    auto topic_letter = [&](int item) {
      const auto& tau = env.dataset().item(item).topic_coverage;
      const int t = static_cast<int>(
          std::max_element(tau.begin(), tau.end()) - tau.begin());
      return static_cast<char>('A' + (t % 26));
    };
    auto row = [&](const char* name, const std::vector<int>& items) {
      std::printf("  %-18s", name);
      for (int i = 0; i < 10; ++i) std::printf(" %c", topic_letter(items[i]));
      std::printf("\n");
    };
    std::printf("Top-10 topic sequence for diverse user %d:\n", user);
    row("initial (DIN)", list->items);
    row("PRM (relevance)", prm.Rerank(env.dataset(), *list));
    row("DPP (uniform div)", dpp.Rerank(env.dataset(), *list));
    row("RAPID (personal)", rapid.Rerank(env.dataset(), *list));
  }
  return 0;
}
