// Configurable experiment runner: pick the dataset, click-model tradeoff,
// initial ranker and re-rankers from the command line. Useful for quick
// what-if studies without writing code.
//
// Usage:
//   run_experiment [--dataset taobao|movielens|appstore] [--lambda F]
//                  [--ranker din|svmrank|lambdamart] [--epochs N]
//                  [--users N] [--items N] [--seed N]
//                  [--methods init,prm,rapid,...]
//
// Method names: init, dlcm, prm, setrank, srga, mmr, dpp, desa, ssd,
//               adpmmr, pdgan, seq2slate, rapid-det, rapid-pro
//               (aliases: rapid).
//
// Example:
//   ./build/examples/run_experiment --dataset movielens --lambda 0.5
//       --methods init,prm,dpp,rapid --epochs 8

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "eval/table.h"
#include "rankers/din.h"
#include "rankers/lambdamart.h"
#include "rankers/svmrank.h"
#include "rerank/dpp.h"
#include "rerank/mmr.h"
#include "rerank/neural_models.h"
#include "rerank/pdgan.h"
#include "rerank/seq2slate.h"
#include "rerank/ssd.h"

namespace {

using namespace rapid;

std::unique_ptr<rerank::Reranker> MakeMethod(const std::string& name,
                                             int epochs) {
  rerank::NeuralRerankConfig ncfg;
  ncfg.epochs = epochs;
  core::RapidConfig rcfg;
  rcfg.train = ncfg;
  if (name == "init") return std::make_unique<rerank::InitReranker>();
  if (name == "dlcm") return std::make_unique<rerank::DlcmReranker>(ncfg);
  if (name == "prm") return std::make_unique<rerank::PrmReranker>(ncfg);
  if (name == "setrank") {
    return std::make_unique<rerank::SetRankReranker>(ncfg);
  }
  if (name == "srga") return std::make_unique<rerank::SrgaReranker>(ncfg);
  if (name == "mmr") return std::make_unique<rerank::MmrReranker>();
  if (name == "dpp") return std::make_unique<rerank::DppReranker>();
  if (name == "desa") {
    rerank::NeuralRerankConfig desa = rerank::DesaReranker::PairwiseConfig();
    desa.epochs = epochs;
    return std::make_unique<rerank::DesaReranker>(desa);
  }
  if (name == "ssd") return std::make_unique<rerank::SsdReranker>();
  if (name == "seq2slate") {
    return std::make_unique<rerank::Seq2SlateReranker>(ncfg);
  }
  if (name == "adpmmr") return std::make_unique<rerank::AdpMmrReranker>();
  if (name == "pdgan") return std::make_unique<rerank::PdGanReranker>();
  if (name == "rapid-det") {
    rcfg.head = core::OutputHead::kDeterministic;
    return std::make_unique<core::RapidReranker>(rcfg);
  }
  if (name == "rapid-pro" || name == "rapid") {
    return std::make_unique<core::RapidReranker>(rcfg);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "taobao";
  std::string ranker = "din";
  std::string methods = "init,prm,dpp,rapid";
  float lambda = 0.9f;
  int epochs = 8;
  int users = 100;
  int items = 600;
  uint64_t seed = 1;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--dataset") {
      dataset = value;
    } else if (flag == "--ranker") {
      ranker = value;
    } else if (flag == "--methods") {
      methods = value;
    } else if (flag == "--lambda") {
      lambda = std::stof(value);
    } else if (flag == "--epochs") {
      epochs = std::stoi(value);
    } else if (flag == "--users") {
      users = std::stoi(value);
    } else if (flag == "--items") {
      items = std::stoi(value);
    } else if (flag == "--seed") {
      seed = std::stoull(value);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
  }

  eval::PipelineConfig config;
  if (dataset == "taobao") {
    config.sim.kind = data::DatasetKind::kTaobao;
  } else if (dataset == "movielens") {
    config.sim.kind = data::DatasetKind::kMovieLens;
  } else if (dataset == "appstore") {
    config.sim.kind = data::DatasetKind::kAppStore;
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 1;
  }
  config.sim.num_users = users;
  config.sim.num_items = items;
  config.sim.rerank_lists_per_user = 6;
  config.dcm.lambda = lambda;
  config.seed = seed;

  std::unique_ptr<rank::Ranker> initial;
  if (ranker == "din") {
    rank::DinConfig din_cfg;
    din_cfg.epochs = 1;
    initial = std::make_unique<rank::DinRanker>(din_cfg);
  } else if (ranker == "svmrank") {
    initial = std::make_unique<rank::SvmRankRanker>();
  } else if (ranker == "lambdamart") {
    initial = std::make_unique<rank::LambdaMartRanker>();
  } else {
    std::fprintf(stderr, "unknown ranker %s\n", ranker.c_str());
    return 1;
  }

  std::printf("dataset=%s lambda=%.2f ranker=%s users=%d items=%d seed=%llu\n",
              dataset.c_str(), lambda, ranker.c_str(), users, items,
              static_cast<unsigned long long>(seed));
  eval::Environment env(config, std::move(initial));

  const bool has_rev = config.sim.kind == data::DatasetKind::kAppStore;
  std::vector<std::string> columns = {"click@5", "ndcg@5", "div@5",
                                      "click@10", "ndcg@10", "div@10"};
  if (has_rev) {
    columns.push_back("rev@5");
    columns.push_back("rev@10");
  } else {
    columns.push_back("satis@5");
    columns.push_back("satis@10");
  }
  eval::ResultTable table(columns);

  std::stringstream ss(methods);
  std::string name;
  while (std::getline(ss, name, ',')) {
    auto method = MakeMethod(name, epochs);
    if (method == nullptr) {
      std::fprintf(stderr, "unknown method '%s' (skipped)\n", name.c_str());
      continue;
    }
    std::printf("running %s...\n", method->name().c_str());
    table.AddRow(eval::FitAndEvaluate(env, *method));
  }
  std::printf("\n%s\n", table.Render("run_experiment").c_str());
  return 0;
}
