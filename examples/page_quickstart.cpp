// Page-level reranking quickstart: build a 3-list page session, serve it
// over a real socket as ONE kPageRequest frame, and show the joint
// cross-list pass beating independent per-list reranking on page-level
// coverage.
//
// 1. Generate a dataset plus multi-list page sessions (sibling lists draw
//    from a shared "trending" pool, so the raw page carries genuine
//    cross-list redundancy).
// 2. Train a RAPID snapshot, stand up a ServingRouter behind a
//    net::Server on loopback.
// 3. Send one page (user + 3 candidate lists + a shared diversity
//    budget) as a single frame, twice: joint=1 (shared coverage state)
//    and joint=0 (independent baseline). The server fans the page's
//    lists into one scoring micro-batch, runs the cross-list greedy
//    pass, and reassembles the page reply.
// 4. Compare the two replies under the page DCM (the ground-truth user
//    model with cross-list coverage memory): the joint pass earns more
//    expected page utility and leaves less duplicated topic mass in the
//    prefixes. Then dump the per-page serving stats the server kept.
//
// Build & run:  ./build/examples/page_quickstart

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/rapid.h"
#include "click/dcm.h"
#include "click/page_dcm.h"
#include "datagen/pages.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "serve/router.h"
#include "serve/snapshot.h"

int main() {
  using namespace rapid;

  // ---- Offline: dataset, page sessions, one trained snapshot -------------
  std::printf("Building dataset and multi-list page sessions...\n");
  data::SimConfig sim;
  sim.kind = data::DatasetKind::kTaobao;
  sim.num_users = 40;
  sim.num_items = 250;
  data::Dataset dataset = data::GenerateDataset(sim, 2023);

  data::PageGenConfig gen;
  gen.lists_per_page = 3;
  gen.num_pages = 20;
  gen.shared_frac = 0.6f;  // Sibling lists overlap heavily, on purpose.
  const std::vector<data::PageSession> sessions =
      data::GeneratePageSessions(dataset, gen, 1);

  const std::string snapshot_path = "/tmp/rapid_page_quickstart.rsnp";
  {
    click::GroundTruthClickModel dcm(&dataset, click::DcmConfig{});
    std::mt19937_64 click_rng(11);
    std::vector<data::ImpressionList> train;
    for (const data::Request& req : dataset.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, click_rng);
      train.push_back(std::move(list));
    }
    core::RapidConfig cfg;
    cfg.train.epochs = 2;
    core::RapidReranker model(cfg);
    model.Fit(dataset, train, /*seed=*/7);
    if (!serve::Snapshot::Save(snapshot_path, model, dataset)) {
      std::printf("snapshot save failed\n");
      return 1;
    }
  }

  // ---- Online: router + network front-end --------------------------------
  serve::ServingRouter router(dataset, serve::RouterConfig{});
  if (router.LoadSlot("main", snapshot_path) == 0) {
    std::printf("LoadSlot failed\n");
    return 1;
  }
  net::Server server(router);
  if (!server.Start()) {
    std::printf("server start failed\n");
    return 1;
  }
  std::printf("Serving slot \"main\" on 127.0.0.1:%u\n\n", server.port());

  net::Client client;
  if (!client.Connect("127.0.0.1", server.port())) {
    std::printf("connect failed\n");
    return 1;
  }

  // ---- One page, served both ways over the same connection ---------------
  // joint=1: one coverage state shared across the page's lists; joint=0:
  // each list diversifies blind to its siblings with an even budget split.
  // Each reply is scored under the page DCM — the ground-truth scanner
  // whose attraction decays on topics a sibling list already covered.
  const click::PageDcm page_dcm(&dataset, click::PageDcmConfig{});
  const int top_k = 5;  // Diversify (and judge) what the user scans first.
  double joint_util = 0.0, indep_util = 0.0;
  double joint_cov = 0.0, indep_cov = 0.0;
  double joint_red = 0.0, indep_red = 0.0;
  for (const data::PageSession& session : sessions) {
    for (const uint8_t joint : {uint8_t{1}, uint8_t{0}}) {
      net::WirePageRequest request;
      request.slot = "main";
      request.user_id = session.user_id;
      request.diversity_budget = session.diversity_budget;
      request.joint = joint;
      request.top_k = top_k;
      request.lists = session.lists;
      net::Client::Reply reply;
      if (!client.CallPage(request, &reply, 5000) || reply.is_error ||
          reply.page.degraded) {
        std::printf("page call failed\n");
        return 1;
      }
      const double util = page_dcm.ExpectedPageUtility(
          session.user_id, reply.page.lists, top_k);
      if (joint) {
        joint_util += util;
        joint_cov += reply.page.page_coverage;
        joint_red += reply.page.cross_list_redundancy;
      } else {
        indep_util += util;
        indep_cov += reply.page.page_coverage;
        indep_red += reply.page.cross_list_redundancy;
      }
    }
  }
  const double pages = static_cast<double>(sessions.size());
  std::printf("Served %zu pages twice (joint and independent), one frame "
              "per page, %d lists each:\n",
              sessions.size(), gen.lists_per_page);
  std::printf("  joint:       utility=%.4f coverage=%.4f redundancy=%.4f "
              "(per page)\n",
              joint_util / pages, joint_cov / pages, joint_red / pages);
  std::printf("  independent: utility=%.4f coverage=%.4f redundancy=%.4f "
              "(per page)\n",
              indep_util / pages, indep_cov / pages, indep_red / pages);
  std::printf("Shared coverage state: the joint pass spends the page's "
              "budget on topics no sibling list already covered, so the "
              "DCM scanner finds more fresh topics and clicks more.\n\n");

  // ---- The server kept per-page serving stats ----------------------------
  const serve::RouterStats stats = server.StatsWithNet();
  std::printf("Page serving stats:\n%s", stats.ToTable().c_str());

  server.Stop();
  const bool joint_wins = joint_util > indep_util && joint_red < indep_red;
  return (joint_wins && stats.page.pages == 2 * sessions.size()) ? 0 : 1;
}
