// Sharded serving quickstart: three shard servers behind one
// consistent-hash ShardRouter — fan-out scoring, a fleet-wide stats
// scrape, a canary-first coordinated rollout, and graceful degradation
// when a shard goes down.
//
// 1. Train two RAPID generations offline and snapshot both.
// 2. Stand up three shards — each its own ServingRouter + net::Server on
//    an ephemeral loopback port (in one process here; in production each
//    would be its own machine).
// 3. Front them with a shard::ShardRouter: requests hash to shards by
//    user id on a seeded consistent ring, replies correlate back by
//    request id.
// 4. Scrape fleet-wide stats: per-shard RouterStats merged into one view.
// 5. Roll the v2 snapshot out canary-first — one shard publishes and
//    proves the snapshot before the rest of the fleet follows.
// 6. Stop one shard: its requests fast-fail with an error (no hangs), the
//    other shards keep serving.
//
// Build & run:  ./build/examples/shard_quickstart

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "net/server.h"
#include "rankers/din.h"
#include "serve/router.h"
#include "serve/snapshot.h"
#include "shard/shard_router.h"

int main() {
  using namespace rapid;

  // ---- Offline: train and snapshot two model generations ----------------
  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 60;
  config.sim.num_items = 400;
  config.seed = 42;

  std::printf("Building environment and training two model generations...\n");
  rank::DinConfig din_config;
  din_config.epochs = 1;
  eval::Environment env(config, std::make_unique<rank::DinRanker>(din_config));

  const std::string v1_path = "/tmp/rapid_shard_v1.rsnp";
  const std::string v2_path = "/tmp/rapid_shard_v2.rsnp";
  {
    core::RapidConfig cfg;
    cfg.train.epochs = 2;
    core::RapidReranker gen1(cfg);
    gen1.Fit(env.dataset(), env.train_lists(), /*seed=*/7);
    core::RapidReranker gen2(cfg);
    gen2.Fit(env.dataset(), env.train_lists(), /*seed=*/8);
    if (!serve::Snapshot::Save(v1_path, gen1, env.dataset()) ||
        !serve::Snapshot::Save(v2_path, gen2, env.dataset())) {
      std::printf("snapshot save failed\n");
      return 1;
    }
  }

  // ---- Online: three shards, each a router behind a server ---------------
  const int kShards = 3;
  std::vector<std::unique_ptr<serve::ServingRouter>> routers;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<shard::ShardEndpoint> endpoints;
  for (int s = 0; s < kShards; ++s) {
    serve::RouterConfig router_config;
    router_config.num_threads = 2;
    routers.push_back(std::make_unique<serve::ServingRouter>(env.dataset(),
                                                             router_config));
    if (routers.back()->LoadSlot("main", v1_path) == 0) {
      std::printf("LoadSlot failed on shard %d\n", s);
      return 1;
    }
    net::ServerConfig server_config;
    server_config.enable_remote_load = true;  // Rollouts need the admin frame.
    servers.push_back(
        std::make_unique<net::Server>(*routers.back(), server_config));
    if (!servers.back()->Start()) {
      std::printf("server start failed on shard %d\n", s);
      return 1;
    }
    endpoints.push_back({"127.0.0.1", servers.back()->port()});
    std::printf("Shard %d serving slot \"main\" (v1) on 127.0.0.1:%u\n", s,
                servers.back()->port());
  }

  shard::ShardRouter fleet(endpoints);
  if (!fleet.Start()) {
    std::printf("shard router start failed\n");
    return 1;
  }

  // ---- Fan out: requests hash to shards by user id -----------------------
  std::printf("\nScoring %zu test lists across the fleet:\n",
              env.test_lists().size());
  int fanout_ok = 0;
  bool two_shards_hit[8] = {};
  for (const data::ImpressionList& list : env.test_lists()) {
    net::WireRequest request;
    request.slot = "main";
    request.list = list;
    const shard::ShardReply reply = fleet.Call(request);
    if (reply.ok) {
      ++fanout_ok;
      two_shards_hit[reply.shard % 8] = true;
    }
  }
  int shards_hit = 0;
  for (bool hit : two_shards_hit) shards_hit += hit ? 1 : 0;
  std::printf("  %d/%zu answered, ring spread the users over %d shards\n",
              fanout_ok, env.test_lists().size(), shards_hit);

  // ---- One merged fleet view ---------------------------------------------
  const shard::FleetStats before = fleet.Stats();
  std::printf("\nFleet stats (%d shards up, %llu requests merged):\n%s",
              before.shards_up,
              static_cast<unsigned long long>(before.merged.total.requests),
              before.ToTable().c_str());

  // ---- Canary-first rollout of the v2 snapshot ---------------------------
  const shard::RolloutResult rollout = fleet.Rollout("main", v2_path);
  const bool committed = rollout.status == shard::RolloutStatus::kCommitted;
  std::printf("\nRollout of v2: %s (canary shard %d",
              committed ? "committed fleet-wide" : "did not commit",
              rollout.canary_shard);
  for (size_t s = 0; s < rollout.versions.size(); ++s) {
    std::printf(", shard %zu -> v%llu", s,
                static_cast<unsigned long long>(rollout.versions[s]));
  }
  std::printf(")\n");

  // ---- Degradation: a shard dies, the fleet keeps answering --------------
  servers[0]->Stop();
  routers[0]->Shutdown();
  std::printf("\nStopped shard 0; scoring every test list again:\n");
  int down_failed = 0, others_ok = 0;
  for (const data::ImpressionList& list : env.test_lists()) {
    net::WireRequest request;
    request.slot = "main";
    request.list = list;
    const shard::ShardReply reply = fleet.Call(request);
    if (reply.ok) {
      ++others_ok;
    } else {
      ++down_failed;  // Fast local failure with a message — never a hang.
    }
  }
  std::printf("  %d answered by live shards, %d fast-failed with an error "
              "(shard 0's users)\n",
              others_ok, down_failed);

  fleet.Shutdown();
  for (int s = 1; s < kShards; ++s) {
    servers[s]->Stop();
    routers[s]->Shutdown();
  }

  const bool ok = fanout_ok == static_cast<int>(env.test_lists().size()) &&
                  shards_hit >= 2 && committed && others_ok > 0 &&
                  down_failed > 0;
  return ok ? 0 : 1;
}
