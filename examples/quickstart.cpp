// Quickstart: the smallest end-to-end RAPID pipeline.
//
// 1. Generate a synthetic Taobao-style dataset.
// 2. Build the experiment environment (trains the DIN initial ranker,
//    simulates training clicks with the DCM).
// 3. Fit RAPID on the logged lists and re-rank a test request.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "rankers/din.h"

int main() {
  using namespace rapid;

  // A small universe so this runs in seconds.
  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 60;
  config.sim.num_items = 400;
  config.dcm.lambda = 0.7f;  // Clicks driven by relevance AND diversity.
  config.seed = 42;

  std::printf("Building environment (dataset + DIN initial ranker)...\n");
  rank::DinConfig din_config;
  din_config.epochs = 1;
  eval::Environment env(config,
                        std::make_unique<rank::DinRanker>(din_config));

  std::printf("Training RAPID on %zu logged lists...\n",
              env.train_lists().size());
  core::RapidConfig rapid_config;
  rapid_config.train.epochs = 6;
  core::RapidReranker rapid(rapid_config);
  rapid.Fit(env.dataset(), env.train_lists(), /*seed=*/7);
  std::printf("Final training loss: %.4f\n\n", rapid.final_loss());

  // Re-rank the first test request.
  const data::ImpressionList& request = env.test_lists().front();
  const std::vector<int> reranked = rapid.Rerank(env.dataset(), request);

  std::printf("User %d, top-10 before -> after re-ranking "
              "(item id : main topic):\n",
              request.user_id);
  auto main_topic = [&](int item) {
    const auto& tau = env.dataset().item(item).topic_coverage;
    return static_cast<int>(std::max_element(tau.begin(), tau.end()) -
                            tau.begin());
  };
  for (int i = 0; i < 10; ++i) {
    std::printf("  #%2d   %4d : t%d   ->   %4d : t%d\n", i + 1,
                request.items[i], main_topic(request.items[i]), reranked[i],
                main_topic(reranked[i]));
  }

  // Expected utility of both orders under the ground-truth user model.
  std::printf("\nExpected clicks@10: initial %.3f -> RAPID %.3f\n",
              env.dcm().ExpectedClicks(request.user_id, request.items, 10),
              env.dcm().ExpectedClicks(request.user_id, reranked, 10));

  // The learned preference over the 5 topics for this user.
  std::printf("Learned per-topic preference theta: ");
  for (float t :
       rapid.PreferenceDistribution(env.dataset(), request.user_id)) {
    std::printf("%.2f ", t);
  }
  std::printf("\n");
  return 0;
}
