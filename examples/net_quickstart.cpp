// Network serving quickstart: score over a real socket, hot-swap the
// model mid-session, and watch the new version arrive in the remote
// response.
//
// 1. Train two RAPID variants offline and snapshot both (format v3, so
//    each file carries its own auto-recorded canary probe).
// 2. Stand up a ServingRouter and wrap it in a net::Server bound to an
//    ephemeral loopback port.
// 3. Connect a net::Client, send a score request over the wire, and read
//    the re-ranked items plus the model attribution off the response.
// 4. LoadSlot the second snapshot while the connection stays open — the
//    next remote response carries the swapped version.
// 5. Stop() drains gracefully: pipelined requests in flight at shutdown
//    are still answered before the server sends FIN.
//
// Build & run:  ./build/examples/net_quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "net/client.h"
#include "net/server.h"
#include "rankers/din.h"
#include "serve/router.h"
#include "serve/snapshot.h"

int main() {
  using namespace rapid;

  // ---- Offline: train and snapshot two model generations ----------------
  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 60;
  config.sim.num_items = 400;
  config.dcm.lambda = 0.9f;
  config.seed = 42;

  std::printf("Building environment and training two model generations...\n");
  rank::DinConfig din_config;
  din_config.epochs = 1;
  eval::Environment env(config, std::make_unique<rank::DinRanker>(din_config));

  const std::string v1_path = "/tmp/rapid_net_v1.rsnp";
  const std::string v2_path = "/tmp/rapid_net_v2.rsnp";
  {
    core::RapidConfig cfg;
    cfg.train.epochs = 2;
    core::RapidReranker gen1(cfg);
    gen1.Fit(env.dataset(), env.train_lists(), /*seed=*/7);
    core::RapidReranker gen2(cfg);
    gen2.Fit(env.dataset(), env.train_lists(), /*seed=*/8);
    if (!serve::Snapshot::Save(v1_path, gen1, env.dataset()) ||
        !serve::Snapshot::Save(v2_path, gen2, env.dataset())) {
      std::printf("snapshot save failed\n");
      return 1;
    }
  }

  // ---- Online: router + network front-end --------------------------------
  serve::RouterConfig router_config;
  router_config.num_threads = 4;
  serve::ServingRouter router(env.dataset(), router_config);
  // Every LoadSlot is canary-guarded by the probe Save embedded in the
  // snapshot — no SetCanary wiring needed.
  if (router.LoadSlot("main", v1_path) == 0) {
    std::printf("LoadSlot failed\n");
    return 1;
  }

  net::Server server(router);  // Ephemeral port on 127.0.0.1.
  if (!server.Start()) {
    std::printf("server start failed\n");
    return 1;
  }
  std::printf("Serving slot \"main\" (v1) on 127.0.0.1:%u\n", server.port());

  // ---- A remote caller scores over the socket ----------------------------
  net::Client client;
  if (!client.Connect("127.0.0.1", server.port())) {
    std::printf("connect failed\n");
    return 1;
  }
  net::WireRequest request;
  request.slot = "main";
  request.list = env.test_lists().front();
  net::Client::Reply reply;
  if (!client.Call(request, &reply, 5000) || reply.is_error) {
    std::printf("remote call failed\n");
    return 1;
  }
  std::printf("Remote response: %s v%llu, %zu items re-ranked in %lldus "
              "server-side, first three: [%d %d %d]\n",
              reply.response.model_name.c_str(),
              static_cast<unsigned long long>(reply.response.model_version),
              reply.response.items.size(),
              static_cast<long long>(reply.response.server_latency_us),
              reply.response.items[0], reply.response.items[1],
              reply.response.items[2]);

  // ---- Hot swap while the connection stays open --------------------------
  const uint64_t swapped = router.LoadSlot("main", v2_path);
  std::printf("Hot-swapped slot \"main\" to v%llu (connection untouched)\n",
              static_cast<unsigned long long>(swapped));
  if (!client.Call(request, &reply, 5000) || reply.is_error) {
    std::printf("remote call after swap failed\n");
    return 1;
  }
  std::printf("Same connection, next response: v%llu — the swap is visible "
              "remotely, stamped per response\n",
              static_cast<unsigned long long>(reply.response.model_version));
  const bool swap_seen = reply.response.model_version == swapped;

  // ---- Graceful drain with requests in flight ----------------------------
  // Pipeline a batch without reading, then Stop(): the drain answers every
  // parsed request and flushes before the FIN.
  const int batch = 8;
  for (int i = 0; i < batch; ++i) {
    net::WireRequest r;
    r.slot = "main";
    r.list = env.test_lists()[i % env.test_lists().size()];
    if (client.Send(&r) == 0) {
      std::printf("pipelined send failed\n");
      return 1;
    }
  }
  server.Stop();
  int answered = 0;
  while (client.Receive(&reply, 2000)) {
    if (!reply.is_error) ++answered;
  }
  const serve::RouterStats stats = server.StatsWithNet();
  std::printf("Stopped with %d requests in flight: %d answered, %llu "
              "dropped\n",
              batch, answered,
              static_cast<unsigned long long>(stats.net.dropped_responses));
  std::printf("\nRouter + net stats:\n%s", stats.ToTable().c_str());

  return (swap_seen && answered == batch &&
          stats.net.dropped_responses == 0)
             ? 0
             : 1;
}
