// Reproduces Table VI: training and inference efficiency of PRM, DESA and
// RAPID on all three environments — total training time (train-all), plus
// google-benchmark timings of one 16-list training step (train-b) and one
// 16-list inference pass (test-b).
//
// `--json` switches to a machine-readable single-object output for the
// perf ledger: train-all plus chrono-timed train-b/test-b per cell
// (google-benchmark is skipped — its repetition protocol is for the
// human-facing run; the ledger wants one comparable number per cell).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

namespace {

using namespace rapid;

struct Cell {
  std::unique_ptr<eval::Environment> env;
  std::vector<data::ImpressionList> batch;  // 16 training lists
};

Cell& GetCell(data::DatasetKind kind) {
  static std::unique_ptr<Cell> cells[3];
  const int idx = static_cast<int>(kind);
  if (!cells[idx]) {
    auto cell = std::make_unique<Cell>();
    eval::PipelineConfig cfg = bench::StandardConfig(kind, 0.9f);
    cfg.sim.num_users = 60;  // Efficiency study: smaller universe suffices.
    cell->env =
        std::make_unique<eval::Environment>(cfg, bench::StandardDin());
    cell->batch.assign(cell->env->train_lists().begin(),
                       cell->env->train_lists().begin() + 16);
    cells[idx] = std::move(cell);
  }
  return *cells[idx];
}

std::unique_ptr<rerank::NeuralReranker> MakeModel(int which) {
  rerank::NeuralRerankConfig one_epoch = bench::BenchNeuralConfig();
  one_epoch.epochs = 1;
  switch (which) {
    case 0:
      return std::make_unique<rerank::PrmReranker>(one_epoch);
    case 1: {
      rerank::NeuralRerankConfig desa = one_epoch;
      desa.loss = rerank::RerankLoss::kPairwiseLogistic;
      return std::make_unique<rerank::DesaReranker>(desa);
    }
    default: {
      core::RapidConfig cfg = bench::BenchRapidConfig();
      cfg.train.epochs = 1;
      return std::make_unique<core::RapidReranker>(cfg);
    }
  }
}

// One optimizer step over a 16-list batch (the paper's train-b).
void BM_TrainBatch(benchmark::State& state, int dataset, int model_id) {
  Cell& cell = GetCell(static_cast<data::DatasetKind>(dataset));
  auto model = MakeModel(model_id);
  for (auto _ : state) {
    model->Fit(cell.env->dataset(), cell.batch, 1);
  }
}

// Inference over a 16-list batch (the paper's test-b).
void BM_TestBatch(benchmark::State& state, int dataset, int model_id) {
  Cell& cell = GetCell(static_cast<data::DatasetKind>(dataset));
  auto model = MakeModel(model_id);
  model->Fit(cell.env->dataset(), cell.batch, 1);  // Initialize weights.
  for (auto _ : state) {
    for (const auto& list : cell.batch) {
      benchmark::DoNotOptimize(
          model->ScoreList(cell.env->dataset(), list));
    }
  }
}

void RegisterAll() {
  const char* datasets[] = {"Taobao", "MovieLens", "AppStore"};
  const char* models[] = {"PRM", "DESA", "RAPID"};
  for (int d = 0; d < 3; ++d) {
    for (int m = 0; m < 3; ++m) {
      const std::string train_name =
          std::string("TrainBatch/") + datasets[d] + "/" + models[m];
      const std::string test_name =
          std::string("TestBatch/") + datasets[d] + "/" + models[m];
      benchmark::RegisterBenchmark(
          train_name.c_str(),
          [d, m](benchmark::State& state) { BM_TrainBatch(state, d, m); })
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          test_name.c_str(),
          [d, m](benchmark::State& state) { BM_TestBatch(state, d, m); })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintTrainAll() {
  std::printf(
      "Table VI (train-all): total training time to %d epochs on the full "
      "re-ranking training split.\n",
      bench::kBenchEpochs);
  const data::DatasetKind kinds[] = {data::DatasetKind::kTaobao,
                                     data::DatasetKind::kMovieLens,
                                     data::DatasetKind::kAppStore};
  for (data::DatasetKind kind : kinds) {
    Cell& cell = GetCell(kind);
    for (int m = 0; m < 3; ++m) {
      std::unique_ptr<rerank::NeuralReranker> model;
      if (m == 0) {
        model = std::make_unique<rerank::PrmReranker>(
            bench::BenchNeuralConfig());
      } else if (m == 1) {
        model = std::make_unique<rerank::DesaReranker>(
            bench::BenchNeuralConfig());
      } else {
        model = std::make_unique<core::RapidReranker>(
            bench::BenchRapidConfig());
      }
      const auto t0 = std::chrono::steady_clock::now();
      model->Fit(cell.env->dataset(), cell.env->train_lists(), 1);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      std::printf("  %-12s %-6s train-all = %6.1f s\n",
                  cell.env->dataset().name.c_str(),
                  model->name().c_str(), secs);
    }
  }
  std::printf("\n");
}

// One JSON row per (dataset, model) cell with train-all, train-b, and
// test-b seconds, all chrono-timed.
void PrintJson() {
  const data::DatasetKind kinds[] = {data::DatasetKind::kTaobao,
                                     data::DatasetKind::kMovieLens,
                                     data::DatasetKind::kAppStore};
  const char* models[] = {"PRM", "DESA", "RAPID"};
  std::string rows;
  for (data::DatasetKind kind : kinds) {
    Cell& cell = GetCell(kind);
    for (int m = 0; m < 3; ++m) {
      const auto timed = [](auto&& fn) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
            .count();
      };
      std::unique_ptr<rerank::NeuralReranker> full;
      if (m == 0) {
        full = std::make_unique<rerank::PrmReranker>(bench::BenchNeuralConfig());
      } else if (m == 1) {
        full = std::make_unique<rerank::DesaReranker>(
            bench::BenchNeuralConfig());
      } else {
        full = std::make_unique<core::RapidReranker>(bench::BenchRapidConfig());
      }
      const double train_all_s = timed([&] {
        full->Fit(cell.env->dataset(), cell.env->train_lists(), 1);
      });

      auto batch_model = MakeModel(m);
      const double train_b_s = timed([&] {
        batch_model->Fit(cell.env->dataset(), cell.batch, 1);
      });
      const double test_b_s = timed([&] {
        for (const auto& list : cell.batch) {
          benchmark::DoNotOptimize(
              batch_model->ScoreList(cell.env->dataset(), list));
        }
      });

      char row[256];
      std::snprintf(row, sizeof(row),
                    "%s  {\"dataset\": \"%s\", \"model\": \"%s\", "
                    "\"train_all_s\": %.3f, \"train_b_s\": %.4f, "
                    "\"test_b_s\": %.4f}",
                    rows.empty() ? "" : ",\n",
                    cell.env->dataset().name.c_str(), models[m], train_all_s,
                    train_b_s, test_b_s);
      rows += row;
      std::fprintf(stderr, "[table6] %s/%s done\n",
                   cell.env->dataset().name.c_str(), models[m]);
    }
  }
  std::printf("{\"bench\": \"table6\", \"epochs\": %d, \"rows\": [\n%s\n]}\n",
              bench::kBenchEpochs, rows.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::JsonFlag(argc, argv)) {
    PrintJson();
    return 0;
  }
  PrintTrainAll();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
