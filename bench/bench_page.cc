// Page-level reranking bench: quantifies the two claims the page
// subsystem makes, and verifies both under --check (the tier-2
// `perf_page_gate`).
//
//  1. "quality": joint cross-list reranking vs the independent per-list
//     baseline on generated multi-list page sessions, judged by the page
//     DCM's expected utility over the treated prefixes. The joint pass
//     shares one coverage state across sibling lists, so it must (a) earn
//     more diversity-aware utility, (b) leave less duplicated topic mass
//     in the prefixes, and (c) spend less marginal-coverage mass doing it
//     — the independent passes re-buy topics their siblings already
//     covered.
//
//  2. "throughput": one kPageRequest frame carrying L lists vs L
//     kScoreRequest frames for the same lists, driven pipelined over
//     loopback against a real net::Server. The page frame pays one
//     header, one parse, one dispatcher handoff, and one response write
//     for the whole page, and its lists enter the router as one burst
//     that micro-batches into a single forward — under --check it must
//     deliver >= 1.3x the single-list bulk-scoring throughput
//     (lists/sec).
//
// Output is one JSON object on stdout (perf-trajectory artifact);
// progress goes to stderr. `--json` is accepted for run_ledger.sh
// uniformity; `--quick` shrinks the stream; `--check` turns the two
// claims into hard pass/fail gates.
//
//   ./build/bench/bench_page            # full run
//   ./build/bench/bench_page --quick    # smoke test
//   ./build/bench/bench_page --quick --check   # tier-2 gate

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "click/dcm.h"
#include "click/page_dcm.h"
#include "core/rapid.h"
#include "datagen/pages.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "page/page.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  using namespace rapid;
  bool quick = false, check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  bool failed = false;

  // ------------------------------------------------------------- environment
  std::fprintf(stderr, "[page] building dataset + page sessions...\n");
  data::SimConfig sim;
  sim.kind = data::DatasetKind::kTaobao;
  sim.num_users = 40;
  sim.num_items = 250;
  data::Dataset dataset = data::GenerateDataset(sim, 2023);

  data::PageGenConfig gen;
  gen.num_pages = quick ? 80 : 300;
  gen.shared_frac = 0.6f;  // Heavy cross-list overlap to exploit.
  const std::vector<data::PageSession> sessions =
      data::GeneratePageSessions(dataset, gen, 20260808);
  const int lists_per_page = gen.lists_per_page;

  // ----------------------------------------------------------------- quality
  // Joint vs independent, judged by the page DCM over the treated top-5
  // prefixes (whole-list coverage is permutation-invariant, so the pass
  // is scored on what the user scans first).
  std::fprintf(stderr, "[page] quality: joint vs independent on %zu pages\n",
               sessions.size());
  const int top_k = 5;
  const click::PageDcm page_dcm(&dataset, click::PageDcmConfig{});
  double joint_util = 0.0, indep_util = 0.0, raw_util = 0.0;
  double joint_cov = 0.0, indep_cov = 0.0;
  double joint_red = 0.0, indep_red = 0.0;
  double joint_spent = 0.0, indep_spent = 0.0;
  {
    page::PageRerankConfig joint_cfg;
    joint_cfg.joint = true;
    joint_cfg.top_k = top_k;
    page::PageRerankConfig indep_cfg;
    indep_cfg.joint = false;
    indep_cfg.top_k = top_k;
    const page::PageReranker joint(dataset, joint_cfg);
    const page::PageReranker indep(dataset, indep_cfg);
    for (const data::PageSession& session : sessions) {
      std::vector<std::vector<int>> lists;
      std::vector<std::vector<float>> relevance;
      for (const data::ImpressionList& list : session.lists) {
        lists.push_back(list.items);
        relevance.push_back(
            page::PageReranker::RankRelevance(list.items.size()));
      }
      const page::PageResult jr =
          joint.Rerank(lists, relevance, session.diversity_budget);
      const page::PageResult ir =
          indep.Rerank(lists, relevance, session.diversity_budget);
      joint_util += page_dcm.ExpectedPageUtility(session.user_id, jr.lists,
                                                 top_k);
      indep_util += page_dcm.ExpectedPageUtility(session.user_id, ir.lists,
                                                 top_k);
      raw_util += page_dcm.ExpectedPageUtility(session.user_id, lists, top_k);
      joint_cov += jr.page_coverage;
      indep_cov += ir.page_coverage;
      joint_red += jr.cross_list_redundancy;
      indep_red += ir.cross_list_redundancy;
      joint_spent += jr.diversity_spent;
      indep_spent += ir.diversity_spent;
    }
  }
  const double pages = static_cast<double>(sessions.size());
  std::fprintf(stderr,
               "[page] quality: utility joint=%.4f indep=%.4f raw=%.4f "
               "(per page)\n",
               joint_util / pages, indep_util / pages, raw_util / pages);
  std::fprintf(stderr,
               "[page] quality: redundancy joint=%.4f indep=%.4f, "
               "spent joint=%.3f indep=%.3f (per page)\n",
               joint_red / pages, indep_red / pages, joint_spent / pages,
               indep_spent / pages);
  if (check) {
    if (!(joint_util > indep_util)) {
      std::fprintf(stderr,
                   "[page] FAIL: joint did not beat independent on page "
                   "DCM utility\n");
      failed = true;
    }
    if (!(joint_red < indep_red)) {
      std::fprintf(stderr,
                   "[page] FAIL: joint left more cross-list redundancy "
                   "than independent\n");
      failed = true;
    }
    if (!(joint_spent < indep_spent)) {
      std::fprintf(stderr,
                   "[page] FAIL: joint spent more diversity mass than "
                   "independent\n");
      failed = true;
    }
  }

  // -------------------------------------------------------------- throughput
  // One page frame of L lists vs L single-list frames, same lists, same
  // server. Few dispatcher threads keep the per-frame overheads (parse,
  // queue handoff, response write) on the measured path.
  std::fprintf(stderr, "[page] throughput: training a snapshot...\n");
  const std::string snapshot_path = "/tmp/bench_page_a.rsnp";
  {
    click::GroundTruthClickModel dcm(&dataset, click::DcmConfig{});
    std::mt19937_64 click_rng(11);
    std::vector<data::ImpressionList> train;
    for (const data::Request& req : dataset.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, click_rng);
      train.push_back(std::move(list));
    }
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = 16;
    core::RapidReranker model(cfg);
    model.Fit(dataset, train, /*seed=*/7);
    if (!serve::Snapshot::Save(snapshot_path, model, dataset)) {
      std::fprintf(stderr, "[page] snapshot save failed\n");
      return 1;
    }
  }
  serve::RouterConfig router_cfg;
  router_cfg.num_threads = 2;
  router_cfg.queue_capacity = 4096;
  serve::ServingRouter router(dataset, router_cfg);
  if (router.LoadSlot("main", snapshot_path) == 0) {
    std::fprintf(stderr, "[page] LoadSlot failed\n");
    return 1;
  }

  const int page_rounds = quick ? 4 : 12;  // Sessions replayed per sample.
  const int window = 16;                   // In-flight frames per mode.
  const int reps = quick ? 3 : 5;

  net::Server server(router);
  if (!server.Start()) {
    std::fprintf(stderr, "[page] server start failed\n");
    return 1;
  }

  // Lists/sec scoring the whole session set `page_rounds` times as page
  // frames (one frame per session).
  uint64_t page_errors = 0;
  const auto measure_pages = [&]() -> double {
    net::Client client;
    if (!client.Connect("127.0.0.1", server.port())) return 0.0;
    const size_t total =
        sessions.size() * static_cast<size_t>(page_rounds);
    size_t submitted = 0, received = 0, inflight = 0;
    const auto t0 = Clock::now();
    while (received < total) {
      if (submitted < total && inflight < window) {
        const data::PageSession& session =
            sessions[submitted % sessions.size()];
        net::WirePageRequest request;
        request.slot = "main";
        request.user_id = session.user_id;
        request.diversity_budget = session.diversity_budget;
        request.top_k = top_k;
        request.lists = session.lists;
        if (client.SendPage(&request) == 0) return 0.0;
        ++submitted;
        ++inflight;
        continue;
      }
      net::Client::Reply reply;
      if (!client.Receive(&reply, 10'000)) return 0.0;
      if (reply.is_error || reply.page.degraded) ++page_errors;
      ++received;
      --inflight;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return static_cast<double>(total) *
           static_cast<double>(lists_per_page) / secs;
  };

  // Lists/sec scoring the same lists as independent kScoreRequest frames.
  uint64_t single_errors = 0;
  const auto measure_singles = [&]() -> double {
    net::Client client;
    if (!client.Connect("127.0.0.1", server.port())) return 0.0;
    const size_t total = sessions.size() *
                         static_cast<size_t>(lists_per_page) *
                         static_cast<size_t>(page_rounds);
    size_t submitted = 0, received = 0, inflight = 0;
    const auto t0 = Clock::now();
    while (received < total) {
      if (submitted < total && inflight < window) {
        const data::PageSession& session =
            sessions[(submitted / static_cast<size_t>(lists_per_page)) %
                     sessions.size()];
        net::WireRequest request;
        request.slot = "main";
        request.list =
            session.lists[submitted % static_cast<size_t>(lists_per_page)];
        if (client.Send(&request) == 0) return 0.0;
        ++submitted;
        ++inflight;
        continue;
      }
      net::Client::Reply reply;
      if (!client.Receive(&reply, 10'000)) return 0.0;
      if (reply.is_error || reply.response.degraded) ++single_errors;
      ++received;
      --inflight;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return static_cast<double>(total) / secs;
  };

  std::fprintf(stderr,
               "[page] throughput: %zu pages x %d lists x %d rounds, "
               "window %d, %d reps\n",
               sessions.size(), lists_per_page, page_rounds, window, reps);
  measure_pages();    // Warm-up: page-in, allocator, router caches.
  measure_singles();  // (Repeat() deliberately keeps warm-up explicit.)
  page_errors = 0;
  single_errors = 0;
  const bench::RepeatStats page_tput = bench::Repeat(reps, measure_pages);
  const bench::RepeatStats single_tput = bench::Repeat(reps, measure_singles);
  server.Stop();

  const double ratio =
      page_tput.median / std::max(single_tput.median, 1e-9);
  std::fprintf(stderr,
               "[page] throughput: page=%.0f lists/s single=%.0f lists/s "
               "ratio=%.2fx errors=%llu/%llu\n",
               page_tput.median, single_tput.median, ratio,
               static_cast<unsigned long long>(page_errors),
               static_cast<unsigned long long>(single_errors));
  if (page_errors > 0 || single_errors > 0) {
    std::fprintf(stderr, "[page] FAIL: throughput runs saw errors or "
                         "degraded replies\n");
    failed = true;
  }
  if (check && ratio < 1.3) {
    std::fprintf(stderr,
                 "[page] FAIL: page frames only %.2fx single-list frames "
                 "(need >= 1.3x)\n",
                 ratio);
    failed = true;
  }

  std::printf(
      "{\"bench\": \"page\", \"hardware_threads\": %u, "
      "\"quality\": {\"pages\": %zu, \"lists_per_page\": %d, \"top_k\": %d, "
      "\"joint_utility\": %.4f, \"indep_utility\": %.4f, "
      "\"raw_utility\": %.4f, "
      "\"joint_coverage\": %.4f, \"indep_coverage\": %.4f, "
      "\"joint_redundancy\": %.4f, \"indep_redundancy\": %.4f, "
      "\"joint_spent\": %.4f, \"indep_spent\": %.4f}, "
      "\"throughput\": {\"rounds\": %d, \"window\": %d, "
      "\"page_lists_per_sec\": %.1f, \"page_lists_per_sec_min\": %.1f, "
      "\"page_samples\": %s, "
      "\"single_lists_per_sec\": %.1f, \"single_lists_per_sec_min\": %.1f, "
      "\"single_samples\": %s, "
      "\"ratio\": %.3f}}\n",
      std::thread::hardware_concurrency(), sessions.size(), lists_per_page,
      top_k, joint_util / pages, indep_util / pages, raw_util / pages,
      joint_cov / pages, indep_cov / pages, joint_red / pages,
      indep_red / pages, joint_spent / pages, indep_spent / pages,
      page_rounds, window, page_tput.median, page_tput.min,
      page_tput.SamplesJson().c_str(), single_tput.median, single_tput.min,
      single_tput.SamplesJson().c_str(), ratio);

  return failed ? 1 : 0;
}
