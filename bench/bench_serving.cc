// Serving throughput/latency harness: trains a RAPID model once, ships it
// through the snapshot path (train -> save -> load, exactly what a serving
// process does), then replays an identical request stream through
// `serve::ServingEngine` at worker counts 1/2/4/8 and reports throughput,
// latency percentiles, and fallback counts as JSON.
//
// The sweep runs in two modes:
//  - "compute":       requests are pure model inference. Scaling here
//                     tracks physical cores (flat on a 1-core box).
//  - "fetch+compute": each request first emulates the feature-store /
//                     candidate-fetch RPC that precedes scoring in a live
//                     recommender (cf. arXiv:2004.06390). The engine
//                     overlaps those waits across workers, so this mode
//                     demonstrates the concurrency win (>= 2x from 1 -> 4
//                     workers) even when cores are scarce.
//
// Output is one JSON object on stdout (perf-trajectory artifact); progress
// goes to stderr.
//
//   ./build/bench/bench_serving            # full sweep
//   ./build/bench/bench_serving --quick    # fewer requests (smoke test)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace {

// Decorates a fitted re-ranker with the per-request fetch stall of a live
// deployment. Stateless around a const inner model, so it inherits the
// thread-safety contract of `rerank::Reranker`.
class FetchStallReranker : public rapid::rerank::Reranker {
 public:
  FetchStallReranker(const rapid::rerank::Reranker& inner, int stall_us)
      : inner_(inner), stall_us_(stall_us) {}

  std::string name() const override { return inner_.name() + "+fetch"; }

  std::vector<int> Rerank(
      const rapid::data::Dataset& data,
      const rapid::data::ImpressionList& list) const override {
    if (stall_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    }
    return inner_.Rerank(data, list);
  }

 private:
  const rapid::rerank::Reranker& inner_;
  const int stall_us_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rapid;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // A mid-size universe: big enough that one Rerank call does real matrix
  // work, small enough that the whole sweep runs in a couple of minutes.
  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 80;
  config.sim.num_items = 500;
  config.sim.rerank_lists_per_user = 4;
  config.sim.test_lists_per_user = 2;
  config.dcm.lambda = 0.9f;
  config.seed = 2023;

  std::fprintf(stderr, "[serving] building environment...\n");
  eval::Environment env(config, bench::StandardDin());

  std::fprintf(stderr, "[serving] training RAPID...\n");
  core::RapidConfig rapid_config = bench::BenchRapidConfig();
  rapid_config.train.epochs = 2;  // Throughput is weight-agnostic.
  core::RapidReranker trained(rapid_config);
  trained.Fit(env.dataset(), env.train_lists(), /*seed=*/7);

  // Snapshot round trip: serve what a production process would load.
  const std::string snapshot_path = "/tmp/bench_serving.rsnp";
  if (!serve::Snapshot::Save(snapshot_path, trained, env.dataset())) {
    std::fprintf(stderr, "[serving] snapshot save failed\n");
    return 1;
  }
  const auto model = serve::Snapshot::Load(snapshot_path, env.dataset());
  if (model == nullptr) {
    std::fprintf(stderr, "[serving] snapshot load failed\n");
    return 1;
  }

  // Identical request stream for every (mode, thread count) cell: the test
  // lists repeated to a fixed total.
  const int total_requests = quick ? 200 : 1000;
  std::vector<const data::ImpressionList*> stream;
  stream.reserve(total_requests);
  for (int i = 0; i < total_requests; ++i) {
    stream.push_back(&env.test_lists()[i % env.test_lists().size()]);
  }

  struct Mode {
    const char* name;
    int stall_us;
  };
  const Mode modes[] = {{"compute", 0}, {"fetch+compute", 1500}};

  // Every (mode, threads) cell is repeated: the ledger gate compares the
  // median (stable on a shared box), while min and raw samples ride along
  // under non-gated keys for manual inspection.
  const int repetitions = 5;

  std::string results_json;
  bool first = true;
  for (const Mode& mode : modes) {
    const FetchStallReranker served(*model, mode.stall_us);
    double throughput_1 = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      serve::ServingStats stats;  // From the last repetition.
      const bench::RepeatStats reps = bench::Repeat(repetitions, [&] {
        serve::ServingConfig serving;
        serving.num_threads = threads;
        serving.max_batch = 4;
        serving.max_wait_us = 100;
        serving.queue_capacity = 256;
        serving.deadline_us = 0;  // Measure the pure model path.
        serve::ServingEngine engine(env.dataset(), served, serving);

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::future<serve::RerankResponse>> futures;
        futures.reserve(stream.size());
        for (const data::ImpressionList* list : stream) {
          futures.push_back(engine.Submit(*list));
        }
        for (auto& f : futures) f.get();
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        engine.Shutdown();
        stats = engine.stats();
        return static_cast<double>(total_requests) / secs;
      });

      const double throughput = reps.median;
      if (threads == 1) throughput_1 = throughput;
      std::fprintf(
          stderr,
          "[serving] %-13s threads=%d  %7.0f req/s median of %d "
          "(min %.0f, %.2fx vs 1 thread)  p50=%.0fus p99=%.0fus\n",
          mode.name, threads, throughput, repetitions, reps.min,
          throughput_1 > 0 ? throughput / throughput_1 : 1.0, stats.p50_us,
          stats.p99_us);
      char row[1024];
      std::snprintf(row, sizeof(row),
                    "%s  {\"mode\": \"%s\", \"threads\": %d, "
                    "\"fetch_stall_us\": %d, \"throughput_rps\": %.1f, "
                    "\"throughput_rps_min\": %.1f, "
                    "\"throughput_rps_samples\": %s, "
                    "\"speedup_vs_1\": %.2f, \"stats\": %s}",
                    first ? "" : ",\n", mode.name, threads, mode.stall_us,
                    throughput, reps.min, reps.SamplesJson().c_str(),
                    throughput_1 > 0 ? throughput / throughput_1 : 1.0,
                    stats.ToJson().c_str());
      results_json += row;
      first = false;
    }
  }

  // Final pass: a tight deadline at 4 threads to exercise the graceful
  // degradation path under load.
  serve::ServingConfig serving;
  serving.num_threads = 4;
  serving.deadline_us = quick ? 2000 : 5000;
  serving.fallback = serve::FallbackPolicy::kInitialOrder;
  serve::ServingEngine engine(env.dataset(), *model, serving);
  std::vector<std::future<serve::RerankResponse>> futures;
  for (const data::ImpressionList* list : stream) {
    futures.push_back(engine.Submit(*list));
  }
  for (auto& f : futures) f.get();
  engine.Shutdown();
  const serve::ServingStats stats = engine.stats();
  std::fprintf(stderr,
               "[serving] deadline=%lldus: %llu/%llu degraded to fallback\n",
               static_cast<long long>(serving.deadline_us),
               static_cast<unsigned long long>(stats.fallbacks),
               static_cast<unsigned long long>(stats.requests));

  std::printf(
      "{\"bench\": \"serving\", \"requests\": %d, \"list_len\": %d, "
      "\"hardware_threads\": %u, \"results\": [\n%s\n], "
      "\"deadline_run\": {\"threads\": 4, \"deadline_us\": %lld, "
      "\"stats\": %s}}\n",
      total_requests, config.list_len, std::thread::hardware_concurrency(),
      results_json.c_str(), static_cast<long long>(serving.deadline_us),
      stats.ToJson().c_str());
  return 0;
}
