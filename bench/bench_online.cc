// Online-learning bench: cumulative DCM-utility regret over a long
// NON-STATIONARY session, frozen serving vs the closed loop.
//
// Setup: a RAPID model is trained on pre-drift clicks and snapshotted.
// Midway through the session the *hidden* user topic preferences drift
// (`data::ApplyPreferenceDrift` — observable features untouched), so the
// only way a serving stack can notice is through click feedback. Two arms
// replay the same request schedule through a real `net::Server`:
//
//   frozen — the pre-drift snapshot behind a deterministic slot; no
//            feedback, no trainer. After the drift it keeps serving
//            yesterday's preferences.
//   online — the same snapshot behind a UCB-explored slot
//            (`online::OnlinePolicy` via `SetSlotWrapper`), with every
//            served list fed back over kFeedback frames into a
//            `FeedbackLog` drained by an `OnlineTrainer` that fine-tunes
//            and republishes through the canary-guarded `LoadSlot` path.
//
// Per round the driver scores one list, measures regret = oracle true
// satisfaction minus served true satisfaction (both under the *current*,
// possibly drifted, ground-truth DCM; the oracle is the greedy-optimal
// ordering of the same candidates), and — online arm only — simulates
// DCM clicks on the served order and sends them back as feedback.
//
// Reported: cumulative regret per arm (total / pre-drift / post-drift),
// the post-drift recovery split (first vs second half after the drift),
// trainer publish counters, and the zero-drop check. `--check` fails
// unless the online arm's cumulative regret is strictly below the frozen
// arm's, the trainer published at least once, every publish that was
// accepted went through canary, and no reply was dropped.
//
// Output is one JSON object on stdout; progress goes to stderr. `--json`
// is accepted for run_ledger.sh uniformity (the output is always JSON).
//
//   ./build/bench/bench_online                   # full run
//   ./build/bench/bench_online --quick --check   # tier-2 perf gate

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bandit/linear_rapid.h"
#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/server.h"
#include "online/feedback.h"
#include "online/policy.h"
#include "online/trainer.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

constexpr int kListLen = 10;  // Items per served list.
constexpr int kTopK = 5;      // Satisfaction/regret prefix.

struct ArmResult {
  std::string name;
  double cum_regret = 0.0;
  double pre_drift_regret = 0.0;
  double post_drift_regret = 0.0;
  /// Post-drift split in two halves: adaptation shows as second < first.
  double post_early_regret = 0.0;
  double post_late_regret = 0.0;
  rapid::serve::OnlineStats online;
  uint64_t dropped_responses = 0;
  uint64_t feedback_frames = 0;
  uint64_t transport_failures = 0;
  uint64_t served_version = 0;
};

rapid::data::ImpressionList ListFor(const rapid::data::Request& request) {
  rapid::data::ImpressionList list;
  list.user_id = request.user_id;
  const int n = std::min<int>(kListLen, request.candidates.size());
  list.items.assign(request.candidates.begin(), request.candidates.begin() + n);
  for (int i = 0; i < n; ++i) {
    list.scores.push_back(1.0f - 0.05f * static_cast<float>(i));
  }
  return list;
}

/// One arm's full session. `env` is the arm-private environment copy that
/// drifts at `drift_round`; serving always sees the static `base` (the
/// drift is hidden, only clicks reveal it).
ArmResult RunArm(bool with_online_loop, const rapid::data::Dataset& base,
                 const std::string& snapshot_path, int rounds,
                 int drift_round, uint64_t seed) {
  using namespace rapid;

  ArmResult result;
  result.name = with_online_loop ? "online" : "frozen";

  data::Dataset env = base;  // Private copy: mutated by the drift.
  click::GroundTruthClickModel dcm(&env, click::DcmConfig{});

  serve::RouterConfig router_cfg;
  router_cfg.num_threads = 1;
  router_cfg.cache.bypass_slots = {"served"};  // Exploration must not cache.
  serve::ServingRouter router(base, router_cfg);

  auto pulls = std::make_shared<online::PullCounts>();
  if (with_online_loop) {
    router.SetSlotWrapper(
        "served", [pulls](std::shared_ptr<const rerank::Reranker> model) {
          online::OnlinePolicyConfig cfg;
          cfg.exploration = 0.08;
          cfg.record_top_k = kTopK;
          return std::make_shared<const online::OnlinePolicy>(std::move(model),
                                                              pulls, cfg);
        });
  }
  if (router.LoadSlot("served", snapshot_path) == 0) {
    std::fprintf(stderr, "[online] FAIL: initial LoadSlot rejected\n");
    result.transport_failures = 1;
    return result;
  }

  online::FeedbackLog log;
  std::unique_ptr<online::OnlineTrainer> trainer;
  net::ServerConfig server_cfg;
  if (with_online_loop) {
    // The trainer's private model restarts from the same snapshot the
    // frozen arm serves; only feedback separates the two arms.
    auto model = serve::Snapshot::LoadAny(snapshot_path, base);
    if (!model) {
      std::fprintf(stderr, "[online] FAIL: snapshot reload for trainer\n");
      result.transport_failures = 1;
      return result;
    }
    online::OnlineTrainerConfig trainer_cfg;
    trainer_cfg.slot = "served";
    trainer_cfg.min_batch = 12;
    trainer_cfg.max_batch = 64;
    trainer_cfg.epochs_per_round = 4;
    trainer_cfg.publish_every_rounds = 1;
    trainer_cfg.poll_interval = std::chrono::milliseconds(5);
    trainer_cfg.snapshot_path = snapshot_path + ".republish";
    trainer_cfg.seed = seed;
    trainer = std::make_unique<online::OnlineTrainer>(
        base, &router, &log, std::move(model), trainer_cfg);
    server_cfg.feedback_log = &log;
    server_cfg.online_stats = [&t = *trainer] { return t.Stats(); };
  }

  net::Server server(router, server_cfg);
  if (!server.Start()) {
    std::fprintf(stderr, "[online] FAIL: server start\n");
    result.transport_failures = 1;
    return result;
  }
  if (trainer) trainer->Start();

  net::Client client;
  if (!client.Connect("127.0.0.1", server.port())) {
    std::fprintf(stderr, "[online] FAIL: client connect\n");
    result.transport_failures = 1;
    return result;
  }

  // Oracle satisfaction per (request, drift phase), computed lazily — the
  // greedy-optimal ordering of the same kListLen candidates the server
  // sees, scored under the current ground truth.
  std::unordered_map<int64_t, double> oracle_cache;

  const std::vector<data::Request>& pool = env.test_requests;
  std::mt19937_64 click_rng(seed * 7919 + 17);
  int phase = 0;

  auto oracle = [&](int request_idx, const data::ImpressionList& list) {
    const int64_t key = static_cast<int64_t>(request_idx) * 2 + phase;
    auto it = oracle_cache.find(key);
    if (it != oracle_cache.end()) return it->second;
    const std::vector<int> best = bandit::GreedyOracleList(
        env, dcm, list.user_id, list.items, kTopK);
    const double sat = dcm.TrueSatisfaction(list.user_id, best, kTopK);
    oracle_cache.emplace(key, sat);
    return sat;
  };

  for (int round = 0; round < rounds; ++round) {
    if (round == drift_round) {
      data::ApplyPreferenceDrift(&env, env.num_topics / 2, 1.0f);
      phase = 1;
    }
    const int request_idx = round % static_cast<int>(pool.size());
    const data::ImpressionList list = ListFor(pool[request_idx]);

    net::WireRequest request;
    request.slot = "served";
    request.list = list;
    net::Client::Reply reply;
    if (!client.Call(request, &reply, 10000) || reply.is_error) {
      ++result.transport_failures;
      continue;
    }
    const std::vector<int>& served = reply.response.items;
    result.served_version = reply.response.model_version;

    const double sat = dcm.TrueSatisfaction(list.user_id, served, kTopK);
    const double regret = oracle(request_idx, list) - sat;
    result.cum_regret += regret;
    if (phase == 0) {
      result.pre_drift_regret += regret;
    } else {
      result.post_drift_regret += regret;
      const int post_rounds = rounds - drift_round;
      if (round < drift_round + post_rounds / 2) {
        result.post_early_regret += regret;
      } else {
        result.post_late_regret += regret;
      }
    }

    if (with_online_loop) {
      const std::vector<int> clicks =
          dcm.SimulateClicks(list.user_id, served, click_rng);
      std::vector<uint8_t> labels;
      labels.reserve(clicks.size());
      for (int c : clicks) labels.push_back(c ? 1 : 0);
      bool accepted = false;
      if (!client.SendFeedback("served", reply.response.model_version,
                               list.user_id, served, labels, &accepted,
                               10000)) {
        ++result.transport_failures;
      }
    }
    // Pace the session so wall-clock elapses between rounds — a session
    // is traffic over time, not a tight loop — giving the background
    // trainer its concurrency. Both arms pay the identical pause.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  client.Close();
  server.Stop();
  if (trainer) {
    trainer->Stop();
    log.Close();
    result.online = trainer->Stats();
  }
  result.dropped_responses = server.stats().dropped_responses;
  result.feedback_frames = server.stats().feedback_frames;
  router.Shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rapid;
  bool quick = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  data::SimConfig sim;
  sim.kind = data::DatasetKind::kTaobao;
  sim.num_users = quick ? 40 : 60;
  sim.num_items = quick ? 200 : 300;
  sim.rerank_lists_per_user = 4;
  sim.test_lists_per_user = 3;
  sim.candidates_per_request = 30;
  const data::Dataset base = data::GenerateDataset(sim, 2023);

  // Pre-drift supervision: DCM clicks on the initial lists, the standard
  // training diet of the offline pipeline.
  click::GroundTruthClickModel dcm(&base, click::DcmConfig{});
  std::mt19937_64 rng(11);
  std::vector<data::ImpressionList> train;
  for (const data::Request& request : base.rerank_train_requests) {
    data::ImpressionList list = ListFor(request);
    list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
    train.push_back(std::move(list));
  }

  core::RapidConfig model_cfg;
  model_cfg.hidden_dim = 16;
  model_cfg.train.epochs = quick ? 2 : 4;
  auto model = std::make_unique<core::RapidReranker>(model_cfg);
  std::fprintf(stderr, "[online] fitting the pre-drift model (%zu lists)\n",
               train.size());
  model->Fit(base, train, 2023);

  const std::string snapshot_path = "/tmp/rapid_bench_online.rsnp";
  if (!serve::Snapshot::Save(snapshot_path, *model, base)) {
    std::fprintf(stderr, "[online] FAIL: snapshot save\n");
    return 1;
  }
  model.reset();

  const int rounds = quick ? 450 : 1200;
  const int drift_round = rounds / 4;

  std::fprintf(stderr,
               "[online] session: %d rounds, hidden preference drift at "
               "round %d\n",
               rounds, drift_round);
  const ArmResult frozen =
      RunArm(false, base, snapshot_path, rounds, drift_round, 5);
  std::fprintf(stderr,
               "[online] frozen: cum regret %.2f (pre %.2f, post %.2f)\n",
               frozen.cum_regret, frozen.pre_drift_regret,
               frozen.post_drift_regret);
  const ArmResult online =
      RunArm(true, base, snapshot_path, rounds, drift_round, 5);
  std::fprintf(stderr,
               "[online] online: cum regret %.2f (pre %.2f, post %.2f; "
               "post-drift halves %.2f -> %.2f)\n",
               online.cum_regret, online.pre_drift_regret,
               online.post_drift_regret, online.post_early_regret,
               online.post_late_regret);
  std::fprintf(stderr,
               "[online] trainer: %llu publishes (%llu rejected, %llu "
               "skipped), %llu rounds over %llu lists, served v%llu\n",
               static_cast<unsigned long long>(online.online.publishes),
               static_cast<unsigned long long>(online.online.publish_rejected),
               static_cast<unsigned long long>(online.online.publish_skipped),
               static_cast<unsigned long long>(online.online.train_rounds),
               static_cast<unsigned long long>(online.online.trained_lists),
               static_cast<unsigned long long>(online.served_version));

  bool failed = false;
  const uint64_t transport =
      frozen.transport_failures + online.transport_failures;
  const uint64_t dropped = frozen.dropped_responses + online.dropped_responses;
  if (transport != 0) {
    std::fprintf(stderr, "[online] FAIL: %llu transport failures\n",
                 static_cast<unsigned long long>(transport));
    failed = true;
  }
  if (dropped != 0) {
    std::fprintf(stderr, "[online] FAIL: %llu dropped replies\n",
                 static_cast<unsigned long long>(dropped));
    failed = true;
  }
  if (check) {
    if (online.cum_regret >= frozen.cum_regret) {
      std::fprintf(stderr,
                   "[online] FAIL: online regret %.2f not below frozen "
                   "%.2f\n",
                   online.cum_regret, frozen.cum_regret);
      failed = true;
    }
    if (online.online.publishes < 1) {
      std::fprintf(stderr, "[online] FAIL: trainer never published\n");
      failed = true;
    }
    if (online.online.publish_rejected != 0) {
      std::fprintf(stderr, "[online] FAIL: %llu canary-rejected publishes\n",
                   static_cast<unsigned long long>(
                       online.online.publish_rejected));
      failed = true;
    }
  }

  std::printf(
      "{\"bench\": \"online\", \"rounds\": %d, \"drift_round\": %d, "
      "\"list_len\": %d, \"top_k\": %d, "
      "\"frozen\": {\"cum_regret\": %.3f, \"pre_drift\": %.3f, "
      "\"post_drift\": %.3f}, "
      "\"online\": {\"cum_regret\": %.3f, \"pre_drift\": %.3f, "
      "\"post_drift\": %.3f, \"post_drift_early\": %.3f, "
      "\"post_drift_late\": %.3f, \"publishes\": %llu, "
      "\"publish_rejected\": %llu, \"train_rounds\": %llu, "
      "\"trained_lists\": %llu, \"served_version\": %llu, "
      "\"feedback_frames\": %llu}, "
      "\"regret_reduction\": %.3f, \"dropped_responses\": %llu}\n",
      rounds, drift_round, kListLen, kTopK, frozen.cum_regret,
      frozen.pre_drift_regret, frozen.post_drift_regret, online.cum_regret,
      online.pre_drift_regret, online.post_drift_regret,
      online.post_early_regret, online.post_late_regret,
      static_cast<unsigned long long>(online.online.publishes),
      static_cast<unsigned long long>(online.online.publish_rejected),
      static_cast<unsigned long long>(online.online.train_rounds),
      static_cast<unsigned long long>(online.online.trained_lists),
      static_cast<unsigned long long>(online.served_version),
      static_cast<unsigned long long>(online.feedback_frames),
      frozen.cum_regret - online.cum_regret,
      static_cast<unsigned long long>(dropped));

  return failed ? 1 : 0;
}
