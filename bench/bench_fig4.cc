// Reproduces Figure 4 (RQ4): RAPID with hidden sizes {8, 16, 32, 64} —
// click@10 and div@10 on all three environments at lambda = 0.9.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace rapid;
  const std::vector<std::string> columns = {"click@10", "div@10"};

  std::printf("Figure 4: RAPID with different hidden sizes (lambda=0.9).\n\n");

  for (data::DatasetKind kind :
       {data::DatasetKind::kTaobao, data::DatasetKind::kMovieLens,
        data::DatasetKind::kAppStore}) {
    eval::Environment env(bench::StandardConfig(kind, 0.9f),
                          bench::StandardDin());
    eval::ResultTable table(columns);
    for (int hidden : {8, 16, 32, 64}) {
      core::RapidConfig cfg =
          bench::BenchRapidConfig(core::OutputHead::kProbabilistic, hidden);
      // Larger widths need fewer passes to fit at this data scale; keep
      // the compute budget roughly constant across widths.
      cfg.train.epochs = hidden >= 32 ? 8 : bench::kBenchEpochs;
      core::RapidReranker model(cfg);
      eval::MethodMetrics m = eval::FitAndEvaluate(env, model);
      m.name = "RAPID-h" + std::to_string(hidden);
      table.AddRow(m);
      std::fprintf(stderr, "[fig4 %s] hidden=%d done\n",
                   env.dataset().name.c_str(), hidden);
    }
    char title[64];
    std::snprintf(title, sizeof(title), "Figure 4, %s",
                  env.dataset().name.c_str());
    std::printf("%s\n", table.Render(title).c_str());
  }
  return 0;
}
