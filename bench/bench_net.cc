// Remote load driver for the network serving front-end: drives a
// net::Server over loopback sockets with N pipelined client connections
// and reports client-observed latency percentiles and throughput — the
// numbers in-process benches cannot see (framing, syscalls, the event
// loop, and the dispatcher handoff are all on the measured path).
//
// Three phases, each of which both measures and *verifies*:
//
//  1. "baseline": N connections, window-pipelined requests against one
//     published RAPID snapshot. Reported: p50/p95/p99 round-trip latency
//     and throughput; any dropped response fails the bench.
//
//  2. "drain": the same load, but `Stop()` lands while every request is
//     still in flight. The graceful-drain contract says every parsed
//     request is answered and flushed before the FIN: a single missing
//     reply or a nonzero `dropped_responses` counter fails the bench.
//
//  3. "slow_client": healthy connections run the baseline load while one
//     injected offender pipelines large requests and never reads a byte
//     back. The server must disconnect the offender (write-buffer cap /
//     write-stall guard) while the healthy p99 stays within 2x of the
//     baseline p99 (with an absolute floor to absorb scheduler noise).
//
// Output is one JSON object on stdout (perf-trajectory artifact); progress
// goes to stderr. `--json` is accepted for run_ledger.sh uniformity (the
// output is always JSON); `--quick` shrinks the stream.
//
//   ./build/bench/bench_net            # full run
//   ./build/bench/bench_net --quick    # smoke test

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

double Percentile(std::vector<int64_t>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1));
  return static_cast<double>((*latencies)[idx]);
}

/// Minimal raw socket for the injected offender: it must be able to keep a
/// connection open while deliberately never reading, which the
/// well-behaved net::Client API does not model.
class RawSocket {
 public:
  ~RawSocket() { Close(); }

  bool Connect(uint16_t port, int rcvbuf_bytes) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendAll(const std::vector<uint8_t>& bytes) {
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + written,
                               bytes.size() - written, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;  // The server kicked us out — the expected outcome.
      }
      written += static_cast<size_t>(n);
    }
    return true;
  }

 private:
  int fd_ = -1;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rapid;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // ------------------------------------------------------------- environment
  std::fprintf(stderr, "[net] building dataset + training a snapshot...\n");
  data::SimConfig sim;
  sim.kind = data::DatasetKind::kTaobao;
  sim.num_users = 40;
  sim.num_items = 250;
  sim.rerank_lists_per_user = 4;
  data::Dataset dataset = data::GenerateDataset(sim, 2023);
  click::GroundTruthClickModel dcm(&dataset, click::DcmConfig{});
  std::mt19937_64 click_rng(11);
  std::vector<data::ImpressionList> lists;
  for (const data::Request& req : dataset.rerank_train_requests) {
    data::ImpressionList list;
    list.user_id = req.user_id;
    list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
    for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
    list.clicks = dcm.SimulateClicks(list.user_id, list.items, click_rng);
    lists.push_back(std::move(list));
  }

  const std::string snapshot_path = "/tmp/bench_net_a.rsnp";
  {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = 16;
    core::RapidReranker model(cfg);
    model.Fit(dataset, lists, /*seed=*/7);
    if (!serve::Snapshot::Save(snapshot_path, model, dataset)) {
      std::fprintf(stderr, "[net] snapshot save failed\n");
      return 1;
    }
  }

  serve::RouterConfig router_cfg;
  router_cfg.num_threads = 4;
  router_cfg.queue_capacity = 1024;
  serve::ServingRouter router(dataset, router_cfg);
  if (router.LoadSlot("main", snapshot_path) == 0) {
    std::fprintf(stderr, "[net] LoadSlot failed\n");
    return 1;
  }

  const int connections = 4;
  const int window = 8;
  const int per_conn = quick ? 300 : 1500;

  // Window-pipelined load from `connections` client threads against
  // `port`, recording client-observed round-trip latency per request.
  struct LoadResult {
    std::vector<int64_t> lat_us;
    uint64_t errors = 0;
    double secs = 0.0;
  };
  const auto run_load = [&](uint16_t port, int n_conns, int requests_each) {
    std::vector<std::vector<int64_t>> lat(n_conns);
    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> threads;
    const auto t0 = Clock::now();
    for (int t = 0; t < n_conns; ++t) {
      threads.emplace_back([&, t] {
        net::Client client;
        if (!client.Connect("127.0.0.1", port)) {
          errors.fetch_add(static_cast<uint64_t>(requests_each));
          return;
        }
        std::mt19937_64 rng(300 + static_cast<uint64_t>(t));
        std::unordered_map<uint64_t, Clock::time_point> sent;
        lat[t].reserve(static_cast<size_t>(requests_each));
        int submitted = 0;
        int received = 0;
        while (received < requests_each) {
          if (submitted < requests_each &&
              static_cast<int>(sent.size()) < window) {
            net::WireRequest request;
            request.slot = "main";
            request.list = lists[rng() % lists.size()];
            const uint64_t id = client.Send(&request);
            if (id == 0) {
              errors.fetch_add(
                  static_cast<uint64_t>(requests_each - received));
              return;
            }
            sent[id] = Clock::now();
            ++submitted;
            continue;
          }
          net::Client::Reply reply;
          if (!client.Receive(&reply, 10'000)) {
            errors.fetch_add(static_cast<uint64_t>(requests_each - received));
            return;
          }
          const auto it = sent.find(reply.request_id());
          if (it != sent.end()) {
            lat[t].push_back(std::chrono::duration_cast<
                                 std::chrono::microseconds>(Clock::now() -
                                                            it->second)
                                 .count());
            sent.erase(it);
          }
          if (reply.is_error) errors.fetch_add(1);
          ++received;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    LoadResult result;
    result.secs = std::chrono::duration<double>(Clock::now() - t0).count();
    result.errors = errors.load();
    for (std::vector<int64_t>& l : lat) {
      result.lat_us.insert(result.lat_us.end(), l.begin(), l.end());
    }
    return result;
  };

  bool failed = false;

  // ---------------------------------------------------------------- baseline
  std::fprintf(stderr, "[net] baseline: %d conns x %d reqs (window %d)...\n",
               connections, per_conn, window);
  double base_p50 = 0.0, base_p95 = 0.0, base_p99 = 0.0, base_rps = 0.0;
  uint64_t base_errors = 0, base_dropped = 0;
  {
    net::Server server(router);
    if (!server.Start()) {
      std::fprintf(stderr, "[net] server start failed\n");
      return 1;
    }
    LoadResult r = run_load(server.port(), connections, per_conn);
    server.Stop();
    base_p50 = Percentile(&r.lat_us, 0.50);
    base_p95 = Percentile(&r.lat_us, 0.95);
    base_p99 = Percentile(&r.lat_us, 0.99);
    base_rps = static_cast<double>(r.lat_us.size()) / r.secs;
    base_errors = r.errors;
    base_dropped = server.stats().dropped_responses;
    std::fprintf(stderr,
                 "[net] baseline: p50=%.0fus p95=%.0fus p99=%.0fus "
                 "%.0f req/s errors=%llu dropped=%llu\n",
                 base_p50, base_p95, base_p99, base_rps,
                 static_cast<unsigned long long>(base_errors),
                 static_cast<unsigned long long>(base_dropped));
    if (base_errors > 0 || base_dropped > 0) {
      std::fprintf(stderr, "[net] FAIL: baseline saw errors or drops\n");
      failed = true;
    }
  }

  // ------------------------------------------------------------------- drain
  // Stop() lands with every request parsed but most still in flight; the
  // graceful drain must answer all of them anyway.
  const uint64_t drain_burst = quick ? 24 : 48;
  const uint64_t drain_sent = drain_burst * connections;
  std::fprintf(stderr, "[net] drain: stop with %llu reqs in flight...\n",
               static_cast<unsigned long long>(drain_sent));
  uint64_t drain_answered = 0, drain_dropped = 0, drain_frames_out = 0;
  {
    net::ServerConfig cfg;
    cfg.drain_linger_ms = 100;
    net::Server server(router, cfg);
    if (!server.Start()) {
      std::fprintf(stderr, "[net] server start failed\n");
      return 1;
    }
    std::atomic<uint64_t> answered{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < connections; ++t) {
      threads.emplace_back([&, t] {
        net::Client client;
        if (!client.Connect("127.0.0.1", server.port())) return;
        std::mt19937_64 rng(500 + static_cast<uint64_t>(t));
        for (uint64_t i = 0; i < drain_burst; ++i) {
          net::WireRequest request;
          request.slot = "main";
          request.list = lists[rng() % lists.size()];
          if (client.Send(&request) == 0) return;
        }
        // Read every reply the drain owes us, then the clean FIN.
        net::Client::Reply reply;
        while (client.Receive(&reply, 10'000)) {
          if (!reply.is_error) answered.fetch_add(1);
        }
      });
    }
    // Wait until the server has parsed the full burst, then stop while the
    // dispatchers are still chewing on it.
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (server.stats().frames_in < drain_sent &&
           Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.Stop();
    for (std::thread& t : threads) t.join();
    drain_answered = answered.load();
    drain_dropped = server.stats().dropped_responses;
    drain_frames_out = server.stats().frames_out;
    std::fprintf(stderr,
                 "[net] drain: sent=%llu answered=%llu dropped=%llu\n",
                 static_cast<unsigned long long>(drain_sent),
                 static_cast<unsigned long long>(drain_answered),
                 static_cast<unsigned long long>(drain_dropped));
    if (drain_answered != drain_sent || drain_dropped != 0) {
      std::fprintf(stderr, "[net] FAIL: drain dropped in-flight responses\n");
      failed = true;
    }
  }

  // ------------------------------------------------------------- slow client
  // Healthy load shares the server with one offender that never reads.
  std::fprintf(stderr, "[net] slow client: injecting a non-reading peer...\n");
  const int healthy_per_conn = quick ? 300 : 1000;
  double slow_p99 = 0.0, p99_ratio = 0.0;
  uint64_t slow_closed = 0, slow_dropped = 0, healthy_errors = 0;
  {
    net::ServerConfig cfg;
    // Pin kernel buffering small so the offender's backpressure reaches
    // the server's write buffer instead of vanishing into autotuned
    // socket buffers.
    cfg.so_sndbuf = 4096;
    cfg.max_write_buffer_bytes = 64 * 1024;
    cfg.write_stall_timeout_ms = 500;
    cfg.poll_tick_ms = 5;
    cfg.max_inflight_per_conn = 256;
    net::Server server(router, cfg);
    if (!server.Start()) {
      std::fprintf(stderr, "[net] server start failed\n");
      return 1;
    }
    std::thread offender([&] {
      RawSocket slow;
      if (!slow.Connect(server.port(), /*rcvbuf_bytes=*/4096)) return;
      // Large candidate lists make each response ~4KB so the offender's
      // unread responses overflow the write-buffer cap quickly. The ids
      // stay within the dataset's range, and the unknown slot routes them
      // through the cheap fallback — the offender should not be able to
      // burn model compute either.
      data::ImpressionList big;
      for (int i = 0; i < 1024; ++i) {
        big.items.push_back(i % sim.num_items);
        big.scores.push_back(1.0f);
      }
      std::vector<uint8_t> encoded;
      for (uint64_t i = 0; i < 64; ++i) {
        net::WireRequest request;
        request.request_id = i + 1;
        request.slot = "flood";
        request.list = big;
        encoded.clear();
        net::EncodeScoreRequest(request, &encoded);
        if (!slow.SendAll(encoded)) break;  // Disconnected, as designed.
      }
      // Hold the (dead or dying) socket open while the healthy load runs.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    });
    LoadResult healthy =
        run_load(server.port(), connections, healthy_per_conn);
    offender.join();
    server.Stop();
    slow_p99 = Percentile(&healthy.lat_us, 0.99);
    slow_closed = server.stats().closed_slow;
    slow_dropped = server.stats().dropped_responses;
    healthy_errors = healthy.errors;
    p99_ratio = slow_p99 / std::max(base_p99, 1.0);
    std::fprintf(stderr,
                 "[net] slow client: closed_slow=%llu healthy p99=%.0fus "
                 "(%.2fx baseline) errors=%llu\n",
                 static_cast<unsigned long long>(slow_closed), slow_p99,
                 p99_ratio, static_cast<unsigned long long>(healthy_errors));
    if (slow_closed < 1) {
      std::fprintf(stderr, "[net] FAIL: offender was never disconnected\n");
      failed = true;
    }
    if (healthy_errors > 0) {
      std::fprintf(stderr, "[net] FAIL: healthy connections saw errors\n");
      failed = true;
    }
    // The 2x gate, with an absolute floor: at sub-millisecond baselines a
    // scheduler hiccup alone can double a p99 without meaning anything.
    if (p99_ratio > 2.0 && slow_p99 - base_p99 >= 2000.0) {
      std::fprintf(stderr, "[net] FAIL: healthy p99 degraded %.2fx\n",
                   p99_ratio);
      failed = true;
    }
  }

  std::printf(
      "{\"bench\": \"net\", \"hardware_threads\": %u, "
      "\"baseline\": {\"connections\": %d, \"window\": %d, \"requests\": %d, "
      "\"errors\": %llu, \"p50_us\": %.0f, \"p95_us\": %.0f, "
      "\"p99_us\": %.0f, \"throughput_rps\": %.1f, "
      "\"dropped_responses\": %llu}, "
      "\"drain\": {\"sent\": %llu, \"answered\": %llu, "
      "\"frames_out\": %llu, \"dropped_responses\": %llu}, "
      "\"slow_client\": {\"closed_slow\": %llu, \"healthy_p99_us\": %.0f, "
      "\"p99_ratio\": %.2f, \"dropped_responses\": %llu}}\n",
      std::thread::hardware_concurrency(), connections, window,
      connections * per_conn, static_cast<unsigned long long>(base_errors),
      base_p50, base_p95, base_p99, base_rps,
      static_cast<unsigned long long>(base_dropped),
      static_cast<unsigned long long>(drain_sent),
      static_cast<unsigned long long>(drain_answered),
      static_cast<unsigned long long>(drain_frames_out),
      static_cast<unsigned long long>(drain_dropped),
      static_cast<unsigned long long>(slow_closed), slow_p99, p99_ratio,
      static_cast<unsigned long long>(slow_dropped));

  return failed ? 1 : 0;
}
