// Reproduces Table II: overall performance on the Taobao and MovieLens
// semi-synthetic environments under DCM tradeoff lambda in {0.5, 0.9, 1.0}.
// One sub-table per (lambda, dataset) cell, mirroring the paper's layout.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace rapid;
  const bool json = bench::JsonFlag(argc, argv);
  const std::vector<std::string> columns = {
      "click@5",  "ndcg@5",  "div@5",  "satis@5",
      "click@10", "ndcg@10", "div@10", "satis@10"};

  if (!json) {
    std::printf(
        "Table II: overall performance with DIN as the initial ranker.\n"
        "Semi-synthetic reproduction: absolute values differ from the paper "
        "(simulated data,\nreduced scale); the method ordering is the claim "
        "under reproduction.\n\n");
  }

  bool first = true;
  if (json) std::printf("[");
  for (float lambda : {0.5f, 0.9f, 1.0f}) {
    for (data::DatasetKind kind :
         {data::DatasetKind::kTaobao, data::DatasetKind::kMovieLens}) {
      eval::Environment env(bench::StandardConfig(kind, lambda),
                            bench::StandardDin());
      char title[96];
      std::snprintf(title, sizeof(title), "Table II, lambda=%.1f, %s",
                    lambda, env.dataset().name.c_str());
      eval::ResultTable table(columns);
      const std::string rendered =
          bench::RunMethodSweep(env, columns, title, &table);
      if (json) {
        std::printf("%s%s", first ? "" : ",\n",
                    bench::TableJson(table, columns, title).c_str());
        first = false;
        continue;
      }
      std::printf("%s\n", rendered.c_str());
      std::printf(
          "RAPID-pro vs PRM: click@10 %+0.2f%%  div@10 %+0.2f%%\n\n",
          table.ImprovementPercent("RAPID-pro", "PRM", "click@10"),
          table.ImprovementPercent("RAPID-pro", "PRM", "div@10"));
    }
  }
  if (json) std::printf("]\n");
  return 0;
}
