// Reproduces Figure 3 (RQ3): ablation of RAPID's components — RAPID vs
// RAPID-RNN (no personalized diversity estimator), RAPID-mean (mean
// aggregation instead of the intra-topic LSTM), RAPID-det (deterministic
// head) and RAPID-trans (transformer relevance encoder) — click@10 and
// div@10 on all three environments.
//
// Adaptation note: the paper runs this at lambda = 0.9, where its 10^7-list
// scale resolves 0.1%-level effects. At this reproduction's scale the
// diversity-branch effect at lambda = 0.9 is below click-noise, so the
// ablation runs at lambda = 0.5 (the paper's diversity-heavy setting),
// where the mechanism under ablation actually has leverage on clicks.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

int main() {
  using namespace rapid;
  const std::vector<std::string> columns = {"click@10", "div@10"};

  std::printf("Figure 3: ablation analysis of RAPID (lambda=0.5; see header note).\n\n");

  for (data::DatasetKind kind :
       {data::DatasetKind::kTaobao, data::DatasetKind::kMovieLens,
        data::DatasetKind::kAppStore}) {
    eval::Environment env(bench::StandardConfig(kind, 0.5f),
                          bench::StandardDin());
    eval::ResultTable table(columns);

    std::vector<std::unique_ptr<core::RapidReranker>> variants;
    variants.push_back(
        std::make_unique<core::RapidReranker>(bench::BenchRapidConfig()));
    {
      core::RapidConfig cfg = bench::BenchRapidConfig();
      cfg.diversity_aggregator = core::DiversityAggregator::kNone;
      variants.push_back(std::make_unique<core::RapidReranker>(cfg));
    }
    {
      core::RapidConfig cfg = bench::BenchRapidConfig();
      cfg.diversity_aggregator = core::DiversityAggregator::kMean;
      variants.push_back(std::make_unique<core::RapidReranker>(cfg));
    }
    variants.push_back(std::make_unique<core::RapidReranker>(
        bench::BenchRapidConfig(core::OutputHead::kDeterministic)));
    {
      core::RapidConfig cfg = bench::BenchRapidConfig();
      cfg.relevance_encoder = core::RelevanceEncoder::kTransformer;
      variants.push_back(std::make_unique<core::RapidReranker>(cfg));
    }

    for (auto& model : variants) {
      table.AddRow(eval::FitAndEvaluate(env, *model));
      std::fprintf(stderr, "[fig3 %s] %s done\n",
                   env.dataset().name.c_str(), model->name().c_str());
    }
    char title[64];
    std::snprintf(title, sizeof(title), "Figure 3, %s",
                  env.dataset().name.c_str());
    std::printf("%s\n", table.Render(title).c_str());
  }
  return 0;
}
