#include "bench/bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace rapid::bench {

std::string RunMethodSweep(const eval::Environment& env,
                           const std::vector<std::string>& metric_columns,
                           const std::string& title,
                           eval::ResultTable* table_out) {
  eval::ResultTable local(metric_columns);
  eval::ResultTable& table = table_out != nullptr ? *table_out : local;
  for (auto& method : AllMethods()) {
    const auto t0 = std::chrono::steady_clock::now();
    table.AddRow(eval::FitAndEvaluate(env, *method));
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::fprintf(stderr, "[%s] %-10s done in %.1fs\n", title.c_str(),
                 method->name().c_str(), secs);
  }
  return table.Render(title);
}

bool JsonFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return true;
  }
  return false;
}

std::string TableJson(const eval::ResultTable& table,
                      const std::vector<std::string>& metric_columns,
                      const std::string& title) {
  std::ostringstream out;
  out << "{\"title\": \"" << title << "\", \"rows\": [";
  bool first_row = true;
  for (const eval::MethodMetrics& row : table.rows()) {
    if (!first_row) out << ", ";
    first_row = false;
    out << "{\"method\": \"" << row.name << "\", \"metrics\": {";
    bool first_metric = true;
    for (const std::string& metric : metric_columns) {
      if (!first_metric) out << ", ";
      first_metric = false;
      out << "\"" << metric << "\": " << row.Mean(metric);
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace rapid::bench
