#include "bench/bench_common.h"

#include <chrono>
#include <cstdio>

namespace rapid::bench {

std::string RunMethodSweep(const eval::Environment& env,
                           const std::vector<std::string>& metric_columns,
                           const std::string& title,
                           eval::ResultTable* table_out) {
  eval::ResultTable local(metric_columns);
  eval::ResultTable& table = table_out != nullptr ? *table_out : local;
  for (auto& method : AllMethods()) {
    const auto t0 = std::chrono::steady_clock::now();
    table.AddRow(eval::FitAndEvaluate(env, *method));
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::fprintf(stderr, "[%s] %-10s done in %.1fs\n", title.c_str(),
                 method->name().c_str(), secs);
  }
  return table.Render(title);
}

}  // namespace rapid::bench
