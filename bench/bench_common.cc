#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace rapid::bench {

std::string RunMethodSweep(const eval::Environment& env,
                           const std::vector<std::string>& metric_columns,
                           const std::string& title,
                           eval::ResultTable* table_out) {
  eval::ResultTable local(metric_columns);
  eval::ResultTable& table = table_out != nullptr ? *table_out : local;
  for (auto& method : AllMethods()) {
    const auto t0 = std::chrono::steady_clock::now();
    table.AddRow(eval::FitAndEvaluate(env, *method));
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::fprintf(stderr, "[%s] %-10s done in %.1fs\n", title.c_str(),
                 method->name().c_str(), secs);
  }
  return table.Render(title);
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) args.json = true;
    if (std::strcmp(argv[i], "--quick") == 0) args.quick = true;
    if (std::strcmp(argv[i], "--check") == 0) args.check = true;
  }
  return args;
}

bool JsonFlag(int argc, char** argv) {
  return BenchArgs::Parse(argc, argv).json;
}

std::string RepeatStats::SamplesJson() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) out << ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", samples[i]);
    out << buf;
  }
  out << "]";
  return out.str();
}

RepeatStats Repeat(int repetitions, const std::function<double()>& measure) {
  RepeatStats stats;
  stats.samples.reserve(static_cast<size_t>(std::max(repetitions, 1)));
  for (int k = 0; k < std::max(repetitions, 1); ++k) {
    stats.samples.push_back(measure());
  }
  std::vector<double> sorted = stats.samples;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  const size_t n = sorted.size();
  stats.median = n % 2 == 1 ? sorted[n / 2]
                            : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  return stats;
}

std::string MetricJson(const std::string& key, const RepeatStats& stats,
                       const std::string& extra) {
  std::ostringstream out;
  char buf[128];
  out << "{";
  if (!extra.empty()) out << extra << ", ";
  std::snprintf(buf, sizeof(buf), "\"%s\": %.1f, \"%s_min\": %.1f, ",
                key.c_str(), stats.median, key.c_str(), stats.min);
  out << buf << "\"" << key << "_samples\": " << stats.SamplesJson() << "}";
  return out.str();
}

std::string TableJson(const eval::ResultTable& table,
                      const std::vector<std::string>& metric_columns,
                      const std::string& title) {
  std::ostringstream out;
  out << "{\"title\": \"" << title << "\", \"rows\": [";
  bool first_row = true;
  for (const eval::MethodMetrics& row : table.rows()) {
    if (!first_row) out << ", ";
    first_row = false;
    out << "{\"method\": \"" << row.name << "\", \"metrics\": {";
    bool first_metric = true;
    for (const std::string& metric : metric_columns) {
      if (!first_metric) out << ", ";
      first_metric = false;
      out << "\"" << metric << "\": " << row.Mean(metric);
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace rapid::bench
