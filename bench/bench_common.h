#ifndef RAPID_BENCH_BENCH_COMMON_H_
#define RAPID_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rapid.h"
#include "eval/pipeline.h"
#include "eval/table.h"
#include "rankers/din.h"
#include "rankers/lambdamart.h"
#include "rankers/svmrank.h"
#include "rerank/dpp.h"
#include "rerank/mmr.h"
#include "rerank/neural_models.h"
#include "rerank/pdgan.h"
#include "rerank/ssd.h"

namespace rapid::bench {

/// The standard semi-synthetic experiment scale used by every table/figure
/// binary: sized so a full method sweep finishes in minutes on one core
/// while preserving the paper's qualitative orderings (see DESIGN.md).
inline eval::PipelineConfig StandardConfig(data::DatasetKind kind,
                                           float lambda,
                                           uint64_t seed = 2023) {
  eval::PipelineConfig cfg;
  cfg.sim.kind = kind;
  cfg.sim.num_users = 150;
  cfg.sim.num_items = 800;
  cfg.sim.rerank_lists_per_user = 8;
  cfg.sim.test_lists_per_user = 3;
  cfg.sim.ranker_train_pos_per_user = 6;
  cfg.sim.candidates_per_request = 60;
  cfg.sim.candidate_relevant_frac = 0.25f;
  cfg.dcm.lambda = lambda;
  cfg.list_len = 20;
  cfg.seed = seed;
  return cfg;
}

/// The paper's default initial ranker (DIN), deliberately lightly trained —
/// it is the *initial* stage the re-rankers must improve on.
inline std::unique_ptr<rank::Ranker> StandardDin() {
  rank::DinConfig cfg;
  cfg.epochs = 1;
  return std::make_unique<rank::DinRanker>(cfg);
}

/// Training epochs for the neural re-rankers in bench runs.
inline constexpr int kBenchEpochs = 12;

inline rerank::NeuralRerankConfig BenchNeuralConfig(int hidden = 16) {
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = kBenchEpochs;
  cfg.hidden_dim = hidden;
  return cfg;
}

inline core::RapidConfig BenchRapidConfig(
    core::OutputHead head = core::OutputHead::kProbabilistic,
    int hidden = 16) {
  core::RapidConfig cfg;
  cfg.train = BenchNeuralConfig(hidden);
  cfg.hidden_dim = hidden;
  cfg.head = head;
  return cfg;
}

/// The full method line-up of Tables II-IV, in the paper's row order.
inline std::vector<std::unique_ptr<rerank::Reranker>> AllMethods() {
  std::vector<std::unique_ptr<rerank::Reranker>> out;
  out.push_back(std::make_unique<rerank::InitReranker>());
  out.push_back(std::make_unique<rerank::DlcmReranker>(BenchNeuralConfig()));
  out.push_back(std::make_unique<rerank::PrmReranker>(BenchNeuralConfig()));
  out.push_back(
      std::make_unique<rerank::SetRankReranker>(BenchNeuralConfig()));
  out.push_back(std::make_unique<rerank::SrgaReranker>(BenchNeuralConfig()));
  out.push_back(std::make_unique<rerank::MmrReranker>());
  out.push_back(std::make_unique<rerank::DppReranker>());
  {
    rerank::NeuralRerankConfig desa_cfg = BenchNeuralConfig();
    desa_cfg.loss = rerank::RerankLoss::kPairwiseLogistic;
    out.push_back(std::make_unique<rerank::DesaReranker>(desa_cfg));
  }
  out.push_back(std::make_unique<rerank::SsdReranker>());
  out.push_back(std::make_unique<rerank::AdpMmrReranker>());
  out.push_back(std::make_unique<rerank::PdGanReranker>());
  out.push_back(std::make_unique<core::RapidReranker>(
      BenchRapidConfig(core::OutputHead::kDeterministic)));
  out.push_back(std::make_unique<core::RapidReranker>(
      BenchRapidConfig(core::OutputHead::kProbabilistic)));
  return out;
}

/// Runs every method on `env` and renders the paper-style table with the
/// given metric columns. Prints per-method progress to stderr.
std::string RunMethodSweep(const eval::Environment& env,
                           const std::vector<std::string>& metric_columns,
                           const std::string& title,
                           eval::ResultTable* table_out = nullptr);

/// The standard perf-bench command line, parsed in exactly one place. All
/// bench binaries accept the same three flags (unknown arguments are
/// ignored so wrappers can pass extras through):
///   --json   machine-readable output for perf/run_ledger.sh
///   --quick  reduced workload for gates and CI
///   --check  enforce the bench's acceptance thresholds (exit 1 on fail)
struct BenchArgs {
  bool json = false;
  bool quick = false;
  bool check = false;

  static BenchArgs Parse(int argc, char** argv);
};

/// True when the command line contains `--json`. Bench binaries use this to
/// switch from the human-readable paper tables to machine-readable output
/// for perf-trajectory tracking. (Equivalent to `BenchArgs::Parse(...).json`
/// — kept for the table/figure binaries that take no other flags.)
bool JsonFlag(int argc, char** argv);

/// Result of repeating one timed measurement `K` times (see `Repeat`).
/// Perf benches report `median` under the ledger's canonical metric key
/// (the value `perf/ledger_trend.py` gates) and `min`/`samples` under
/// non-gated side keys, so one noisy run on a shared box neither trips nor
/// masks the trend gate.
struct RepeatStats {
  std::vector<double> samples;
  double min = 0.0;
  double median = 0.0;

  /// The samples as a JSON array fragment, e.g. `[101.2, 99.8, 100.4]`.
  std::string SamplesJson() const;
};

/// Runs `measure` `repetitions` times and summarizes the returned values.
/// The first invocation is NOT discarded: callers that need a warm-up
/// (page-in, allocator steady state) should run one themselves before
/// timing — keeping that explicit avoids silently hiding first-run costs.
RepeatStats Repeat(int repetitions, const std::function<double()>& measure);

/// Renders one repeated measurement as a JSON object fragment under the
/// ledger's key convention: the gated median under `key`, plus
/// `<key>_min` and `<key>_samples` side keys. `extra` (optional) is
/// spliced verbatim after the metric keys, e.g. `"\"backend\": \"avx2\""`.
/// This is the one emit path for per-metric rows, so every bench's ledger
/// entries stay mergeable by `perf/ledger_trend.py`.
std::string MetricJson(const std::string& key, const RepeatStats& stats,
                       const std::string& extra = "");

/// Renders a swept result table as one JSON object:
/// `{"title": ..., "rows": [{"method": ..., "metrics": {"click@5": ...}}]}`
/// with per-metric means, matching the numbers in the rendered table.
std::string TableJson(const eval::ResultTable& table,
                      const std::vector<std::string>& metric_columns,
                      const std::string& title);

}  // namespace rapid::bench

#endif  // RAPID_BENCH_BENCH_COMMON_H_
