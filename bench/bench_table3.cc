// Reproduces Table III: overall performance on the App Store environment
// (one-hot categories, per-item bids, revenue objective). Evaluation uses
// clicks sampled from the held-out ground-truth user model rather than the
// estimated click model, mirroring the paper's real-click evaluation.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace rapid;
  const bool json = bench::JsonFlag(argc, argv);
  const std::vector<std::string> columns = {
      "click@5",  "ndcg@5",  "div@5",  "rev@5",
      "click@10", "ndcg@10", "div@10", "rev@10"};

  if (!json) {
    std::printf(
        "Table III: overall performance on the App Store dataset.\n\n");
  }

  eval::Environment env(
      bench::StandardConfig(data::DatasetKind::kAppStore, 0.9f),
      bench::StandardDin());
  eval::ResultTable table(columns);
  const std::string rendered =
      bench::RunMethodSweep(env, columns, "Table III, AppStoreSim", &table);
  if (json) {
    std::printf("%s\n",
                bench::TableJson(table, columns, "Table III, AppStoreSim")
                    .c_str());
    return 0;
  }
  std::printf("%s\n", rendered.c_str());

  // The paper reports improvement of RAPID-pro over PRM (the strongest
  // baseline on rev@k) plus significance.
  std::printf("impv%% of RAPID-pro over PRM:\n");
  for (const std::string& m : columns) {
    std::printf("  %-9s %+6.2f%%", m.c_str(),
                table.ImprovementPercent("RAPID-pro", "PRM", m));
    const auto& rows = table.rows();
    const eval::MethodMetrics* rapid = nullptr;
    const eval::MethodMetrics* prm = nullptr;
    for (const auto& r : rows) {
      if (r.name == "RAPID-pro") rapid = &r;
      if (r.name == "PRM") prm = &r;
    }
    if (rapid != nullptr && prm != nullptr) {
      std::printf("  (paired t-test p=%.4f)",
                  eval::CompareMethods(*rapid, *prm, m));
    }
    std::printf("\n");
  }
  return 0;
}
