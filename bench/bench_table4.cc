// Reproduces Table IV (RQ2): performance with SVMRank and LambdaMART as
// the initial ranker, click@10 / div@10 at lambda = 0.9 on both public
// environments.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace rapid;
  const bool json = bench::JsonFlag(argc, argv);
  const std::vector<std::string> columns = {"click@10", "div@10"};

  if (!json) {
    std::printf(
        "Table IV: comparison on different initial ranking lists "
        "(lambda=0.9).\n\n");
  }

  struct RankerSpec {
    const char* name;
    std::function<std::unique_ptr<rank::Ranker>()> make;
  };
  // Like DIN (1 epoch), the alternative initial rankers are lightly
  // trained: they model the stage *before* re-ranking, whose headroom the
  // re-rankers are measured on.
  const std::vector<RankerSpec> rankers = {
      {"SVMRank",
       [] {
         rank::SvmRankConfig cfg;
         cfg.epochs = 3;
         cfg.learning_rate = 0.02f;
         return std::make_unique<rank::SvmRankRanker>(cfg);
       }},
      {"LambdaMART",
       [] {
         rank::LambdaMartConfig cfg;
         cfg.num_trees = 12;
         cfg.tree.max_depth = 3;
         return std::make_unique<rank::LambdaMartRanker>(cfg);
       }},
  };

  bool first = true;
  if (json) std::printf("[");
  for (const RankerSpec& spec : rankers) {
    for (data::DatasetKind kind :
         {data::DatasetKind::kTaobao, data::DatasetKind::kMovieLens}) {
      eval::Environment env(bench::StandardConfig(kind, 0.9f), spec.make());
      char title[96];
      std::snprintf(title, sizeof(title), "Table IV, %s initial ranker, %s",
                    spec.name, env.dataset().name.c_str());
      eval::ResultTable table(columns);
      const std::string rendered =
          bench::RunMethodSweep(env, columns, title, &table);
      if (json) {
        std::printf("%s%s", first ? "" : ",\n",
                    bench::TableJson(table, columns, title).c_str());
        first = false;
      } else {
        std::printf("%s\n", rendered.c_str());
      }
    }
  }
  if (json) std::printf("]\n");
  return 0;
}
