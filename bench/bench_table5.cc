// Reproduces Table V (RQ4): RAPID with maximum per-topic behavior sequence
// lengths D in {3, 5, 10} on the App Store environment.
//
//   ./build/bench/bench_table5           # paper-style table
//   ./build/bench/bench_table5 --json    # machine-readable (perf ledger)

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace rapid;
  const bool json = bench::JsonFlag(argc, argv);
  const std::vector<std::string> columns = {
      "click@5",  "ndcg@5",  "div@5",  "rev@5",
      "click@10", "ndcg@10", "div@10", "rev@10"};

  if (!json) {
    std::printf(
        "Table V: RAPID with different maximum lengths of behavior "
        "sequences (App Store).\n\n");
  }

  eval::Environment env(
      bench::StandardConfig(data::DatasetKind::kAppStore, 0.9f),
      bench::StandardDin());
  eval::ResultTable table(columns);
  for (int d : {3, 5, 10}) {
    core::RapidConfig cfg = bench::BenchRapidConfig();
    cfg.max_seq_len = d;
    core::RapidReranker model(cfg);
    eval::MethodMetrics m = eval::FitAndEvaluate(env, model);
    m.name = "RAPID-" + std::to_string(d);
    table.AddRow(m);
    std::fprintf(stderr, "[table5] D=%d done\n", d);
  }
  if (json) {
    std::printf("%s\n",
                bench::TableJson(table, columns, "table5").c_str());
  } else {
    std::printf("%s\n", table.Render("Table V, AppStoreSim").c_str());
  }
  return 0;
}
