// Robustness check beyond the paper: do the DCM conclusions survive under
// a *cascade* click environment (single click, the model the regret
// literature [37,38] assumes)? Trains the top methods on DCM logs as usual
// and evaluates the re-ranked lists by the cascade's analytic click
// probability P(click within top-k).

#include <cstdio>

#include "bench/bench_common.h"
#include "click/cascade.h"
#include "metrics/metrics.h"

int main() {
  using namespace rapid;

  std::printf(
      "Cascade-environment robustness check (extension; lambda=0.7).\n\n");

  eval::Environment env(
      bench::StandardConfig(data::DatasetKind::kTaobao, 0.7f),
      bench::StandardDin());
  const data::Dataset& data = env.dataset();
  click::CascadeClickModel cascade(&data, env.dcm().config());

  struct Row {
    std::string name;
    double p5 = 0.0, p10 = 0.0, div10 = 0.0;
  };
  std::vector<Row> rows;

  auto evaluate = [&](rerank::Reranker& method) {
    method.Fit(data, env.train_lists(), 99);
    Row row;
    row.name = method.name();
    for (const auto& list : env.test_lists()) {
      const auto order = method.Rerank(data, list);
      row.p5 += cascade.ClickProbability(list.user_id, order, 5);
      row.p10 += cascade.ClickProbability(list.user_id, order, 10);
      row.div10 += metrics::DivAtK(data, order, 10);
    }
    const double n = static_cast<double>(env.test_lists().size());
    row.p5 /= n;
    row.p10 /= n;
    row.div10 /= n;
    rows.push_back(row);
    std::fprintf(stderr, "[cascade] %s done\n", row.name.c_str());
  };

  rerank::InitReranker init;
  evaluate(init);
  rerank::PrmReranker prm(bench::BenchNeuralConfig());
  evaluate(prm);
  rerank::DppReranker dpp;
  evaluate(dpp);
  core::RapidReranker rapid(bench::BenchRapidConfig());
  evaluate(rapid);

  std::printf("%-12s %12s %12s %12s\n", "", "P(click)@5", "P(click)@10",
              "div@10");
  for (const Row& row : rows) {
    std::printf("%-12s %12.4f %12.4f %12.4f\n", row.name.c_str(), row.p5,
                row.p10, row.div10);
  }
  std::printf(
      "\nExpected shape: same ordering as the DCM tables — trained "
      "re-rankers above Init,\nRAPID at or above PRM, DPP best on div@10 "
      "only.\n");
  return 0;
}
