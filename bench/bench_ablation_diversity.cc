// Ablation of the pluggable submodular diversity function (the paper notes
// Eq. 4 "can be replaced by other submodular diversity functions"): RAPID
// with probabilistic coverage (the default), concave-over-modular, and
// saturating-linear marginal-diversity features, at lambda = 0.5 where
// diversity has the most leverage on clicks.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace rapid;
  const std::vector<std::string> columns = {"click@5", "div@5", "click@10",
                                            "div@10"};

  std::printf(
      "Diversity-function ablation (DESIGN.md extension; lambda=0.5).\n\n");

  eval::Environment env(
      bench::StandardConfig(data::DatasetKind::kTaobao, 0.5f),
      bench::StandardDin());
  eval::ResultTable table(columns);
  for (core::DiversityFunctionKind kind :
       {core::DiversityFunctionKind::kProbabilisticCoverage,
        core::DiversityFunctionKind::kConcaveOverModular,
        core::DiversityFunctionKind::kSaturatingLinear}) {
    core::RapidConfig cfg = bench::BenchRapidConfig();
    cfg.diversity_function = kind;
    core::RapidReranker model(cfg);
    eval::MethodMetrics m = eval::FitAndEvaluate(env, model);
    m.name = core::DiversityFunctionName(kind);
    table.AddRow(m);
    std::fprintf(stderr, "[ablation] %s done\n",
                 core::DiversityFunctionName(kind));
  }
  std::printf("%s\n",
              table.Render("RAPID diversity-function ablation, TaobaoSim")
                  .c_str());
  return 0;
}
