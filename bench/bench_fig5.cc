// Reproduces Figure 5 (RQ5 case study): for one diverse-interest user and
// one focused-interest user of the MovieLens environment, prints the genre
// distribution of (a) their behavior history and (b) the items RAPID ranks
// into the top-10, plus RAPID's learned preference theta. RAPID should
// mirror each user's personal breadth of interests.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/history.h"

namespace {

using namespace rapid;

void PrintBar(const char* label, float value, float scale) {
  const int width = std::min(50, static_cast<int>(value * scale));
  std::printf("    %-10s %5.2f |", label, value);
  for (int i = 0; i < width; ++i) std::printf("#");
  std::printf("\n");
}

void PrintDistribution(const char* title, const std::vector<float>& dist) {
  std::printf("  %s\n", title);
  for (size_t j = 0; j < dist.size(); ++j) {
    if (dist[j] < 0.01f) continue;  // Skip empty genres for readability.
    char label[24];
    std::snprintf(label, sizeof(label), "genre%02d", static_cast<int>(j));
    PrintBar(label, dist[j], 100.0f);
  }
}

}  // namespace

int main() {
  std::printf(
      "Figure 5: genres of history vs RAPID's top-ranked items for a "
      "diverse and a focused user.\n\n");

  eval::Environment env(
      bench::StandardConfig(data::DatasetKind::kMovieLens, 0.9f),
      bench::StandardDin());
  const data::Dataset& data = env.dataset();

  core::RapidReranker rapid(bench::BenchRapidConfig());
  rapid.Fit(data, env.train_lists(), 99);
  std::fprintf(stderr, "[fig5] RAPID trained\n");

  // Pick the most diverse and the most focused user that have test lists.
  int diverse_user = 0, focused_user = 0;
  for (const data::User& u : data.users) {
    if (u.diversity_appetite >
        data.users[diverse_user].diversity_appetite) {
      diverse_user = u.id;
    }
    if (u.diversity_appetite <
        data.users[focused_user].diversity_appetite) {
      focused_user = u.id;
    }
  }

  for (int user : {diverse_user, focused_user}) {
    std::printf("User %d (%s; diversity appetite %.2f)\n", user,
                user == diverse_user ? "diverse interests"
                                     : "focused interests",
                data.users[user].diversity_appetite);

    PrintDistribution("(a) behavior history genre distribution:",
                      data::HistoryTopicDistribution(data, user));

    // Genre distribution of RAPID's top-10 over this user's test lists.
    std::vector<float> rec_dist(data.num_topics, 0.0f);
    float total = 0.0f;
    for (const data::ImpressionList& list : env.test_lists()) {
      if (list.user_id != user) continue;
      const std::vector<int> reranked = rapid.Rerank(data, list);
      for (int i = 0; i < 10 && i < static_cast<int>(reranked.size()); ++i) {
        for (int j : data::TopicMembership(data.item(reranked[i]))) {
          rec_dist[j] += 1.0f;
          total += 1.0f;
        }
      }
    }
    if (total > 0.0f) {
      for (float& x : rec_dist) x /= total;
    }
    PrintDistribution("(b) RAPID top-10 genre distribution:", rec_dist);

    // The learned per-topic preference (normalized for display).
    std::vector<float> theta = rapid.PreferenceDistribution(data, user);
    float theta_sum = 0.0f;
    for (float t : theta) theta_sum += t;
    if (theta_sum > 0.0f) {
      for (float& t : theta) t /= theta_sum;
    }
    PrintDistribution("(c) RAPID learned preference theta (normalized):",
                      theta);

    // Breadth summary: count of genres holding >5% mass.
    auto breadth = [](const std::vector<float>& dist) {
      int n = 0;
      for (float x : dist) {
        if (x > 0.05f) ++n;
      }
      return n;
    };
    std::printf("  breadth: history=%d genres, RAPID top-10=%d genres\n\n",
                breadth(data::HistoryTopicDistribution(data, user)),
                breadth(rec_dist));
  }
  return 0;
}
