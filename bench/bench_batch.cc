// Batched-inference harness: proves the `ScoreBatch`/`RerankBatch` path
// is (a) bit-exact against the per-list path and (b) a real throughput
// win once per-request overhead (feature fetch, graph setup) is amortized
// across a micro-batch.
//
// Phases, all on a snapshot-round-tripped RAPID model (what a serving
// process actually runs):
//  - "exactness":      ScoreBatch over randomized mixed-length lists must
//                      reproduce ScoreList bitwise, list by list.
//  - "compute":        direct model calls, per-list loop vs ScoreBatch in
//                      chunks of 8 — the pure forward-pass batching win.
//  - "fetch+compute":  `serve::ServingEngine` at 2 workers with a
//                      per-*batch* feature-fetch stall (a batched
//                      feature-store RPC), micro-batch 1 vs 8. The
//                      headline: batching amortizes the fetch, and the
//                      speedup at batch 8 must be >= 1.5x.
//
// Every timed cell repeats `kRepetitions` times; the median is reported
// under the ledger's gated `throughput_rps` key, min/samples ride along.
//
//   ./build/bench/bench_batch                    # full run, JSON to stdout
//   ./build/bench/bench_batch --quick            # smoke-test sizing
//   ./build/bench/bench_batch --quick --check    # exit 1 unless exact and
//                                                # speedup >= 1.5 (used by
//                                                # the perf_batch_gate
//                                                # ctest)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace {

using rapid::data::ImpressionList;

// Decorates a fitted re-ranker with the fetch stall of a live deployment,
// charged once per *call*: a per-list call stalls per list, a batched call
// stalls once for the whole batch — modeling a feature-store RPC whose
// cost is dominated by the round trip, not the payload size. Stateless
// around a const inner model, so it inherits the thread-safety contract.
class FetchStallBatchReranker : public rapid::rerank::Reranker {
 public:
  FetchStallBatchReranker(const rapid::rerank::Reranker& inner, int stall_us)
      : inner_(inner), stall_us_(stall_us) {}

  std::string name() const override { return inner_.name() + "+fetch"; }

  std::vector<int> Rerank(const rapid::data::Dataset& data,
                          const ImpressionList& list) const override {
    Stall();
    return inner_.Rerank(data, list);
  }

  void RerankBatchInto(const rapid::data::Dataset& data,
                       const std::vector<const ImpressionList*>& lists,
                       std::vector<std::vector<int>>* out) const override {
    Stall();
    inner_.RerankBatchInto(data, lists, out);
  }

 private:
  void Stall() const {
    if (stall_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    }
  }

  const rapid::rerank::Reranker& inner_;
  const int stall_us_;
};

// Mixed-length copies of the test lists: each variant keeps a prefix of a
// source list, so batched grouping has several length classes to handle.
std::vector<ImpressionList> MixedLengthLists(
    const std::vector<ImpressionList>& source, int count,
    std::mt19937_64& rng) {
  std::vector<ImpressionList> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    ImpressionList list = source[i % source.size()];
    const int full = static_cast<int>(list.items.size());
    std::uniform_int_distribution<int> len_dist(1, full);
    const int keep = len_dist(rng);
    list.items.resize(keep);
    list.scores.resize(keep);
    list.clicks.clear();
    out.push_back(std::move(list));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rapid;
  bool quick = false, check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 80;
  config.sim.num_items = 500;
  config.sim.rerank_lists_per_user = 4;
  config.sim.test_lists_per_user = 2;
  config.dcm.lambda = 0.9f;
  config.seed = 2023;

  std::fprintf(stderr, "[batch] building environment...\n");
  eval::Environment env(config, bench::StandardDin());

  std::fprintf(stderr, "[batch] training RAPID...\n");
  core::RapidConfig rapid_config = bench::BenchRapidConfig();
  rapid_config.train.epochs = 2;  // Throughput is weight-agnostic.
  core::RapidReranker trained(rapid_config);
  trained.Fit(env.dataset(), env.train_lists(), /*seed=*/7);

  const std::string snapshot_path = "/tmp/bench_batch.rsnp";
  if (!serve::Snapshot::Save(snapshot_path, trained, env.dataset())) {
    std::fprintf(stderr, "[batch] snapshot save failed\n");
    return 1;
  }
  const auto model = serve::Snapshot::LoadAny(snapshot_path, env.dataset());
  if (model == nullptr) {
    std::fprintf(stderr, "[batch] snapshot load failed\n");
    return 1;
  }

  // --- Exactness: batched scores must be bitwise equal to per-list ones,
  // on the round-tripped model, across randomized mixed lengths.
  std::mt19937_64 rng(17);
  const std::vector<ImpressionList> mixed =
      MixedLengthLists(env.test_lists(), quick ? 24 : 64, rng);
  std::vector<const ImpressionList*> mixed_ptrs;
  for (const ImpressionList& list : mixed) mixed_ptrs.push_back(&list);
  bool exact = true;
  {
    const std::vector<std::vector<float>> batched =
        model->ScoreBatch(env.dataset(), mixed_ptrs);
    for (size_t i = 0; i < mixed.size() && exact; ++i) {
      const std::vector<float> single = model->ScoreList(env.dataset(), mixed[i]);
      exact = batched[i] == single;  // bitwise: float == float
    }
    std::fprintf(stderr, "[batch] exactness over %zu mixed-length lists: %s\n",
                 mixed.size(), exact ? "BITWISE EQUAL" : "MISMATCH");
  }

  // Identical request stream for every timed cell.
  const int total_requests = quick ? 160 : 800;
  std::vector<const ImpressionList*> stream;
  stream.reserve(total_requests);
  for (int i = 0; i < total_requests; ++i) {
    stream.push_back(&env.test_lists()[i % env.test_lists().size()]);
  }
  const int repetitions = 5;

  std::string results_json;

  // --- Compute phase: direct calls, per-list loop vs chunked ScoreBatch.
  double compute_speedup = 0.0;
  {
    double single_median = 0.0;
    for (const int chunk : {1, 8}) {
      const bench::RepeatStats reps = bench::Repeat(repetitions, [&] {
        const auto t0 = std::chrono::steady_clock::now();
        if (chunk == 1) {
          for (const ImpressionList* list : stream) {
            model->ScoreList(env.dataset(), *list);
          }
        } else {
          for (size_t start = 0; start < stream.size();
               start += static_cast<size_t>(chunk)) {
            const size_t end =
                std::min(stream.size(), start + static_cast<size_t>(chunk));
            const std::vector<const ImpressionList*> group(
                stream.begin() + start, stream.begin() + end);
            model->ScoreBatch(env.dataset(), group);
          }
        }
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        return static_cast<double>(total_requests) / secs;
      });
      if (chunk == 1) single_median = reps.median;
      compute_speedup = single_median > 0 ? reps.median / single_median : 0.0;
      std::fprintf(stderr,
                   "[batch] compute       chunk=%d  %7.0f lists/s median of "
                   "%d (min %.0f, %.2fx vs chunk 1)\n",
                   chunk, reps.median, repetitions, reps.min, compute_speedup);
      char row[512];
      std::snprintf(row, sizeof(row),
                    "%s  {\"mode\": \"compute\", \"batch\": %d, "
                    "\"throughput_rps\": %.1f, \"throughput_rps_min\": %.1f, "
                    "\"throughput_rps_samples\": %s}",
                    results_json.empty() ? "" : ",\n", chunk, reps.median,
                    reps.min, reps.SamplesJson().c_str());
      results_json += row;
    }
  }

  // --- Fetch+compute phase: the serving engine with a per-batch fetch
  // stall, micro-batch 1 vs 8 at a fixed 2 workers. This isolates the
  // batching win from thread scaling (cf. bench_serving).
  const FetchStallBatchReranker served(*model, /*stall_us=*/1500);
  double batch1_median = 0.0, fetch_speedup = 0.0;
  bool engine_exact = true;
  serve::ServingStats batch8_stats;
  for (const int max_batch : {1, 8}) {
    serve::ServingStats stats;  // From the last repetition.
    const bench::RepeatStats reps = bench::Repeat(repetitions, [&] {
      serve::ServingConfig serving;
      serving.num_threads = 2;
      serving.max_batch = max_batch;
      serving.max_wait_us = 100;
      serving.queue_capacity = 256;
      serving.deadline_us = 0;  // Deterministic: every request runs the model.
      serve::ServingEngine engine(env.dataset(), served, serving);

      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<serve::RerankResponse>> futures;
      futures.reserve(stream.size());
      for (const ImpressionList* list : stream) {
        futures.push_back(engine.Submit(*list));
      }
      std::vector<std::vector<int>> responses;
      responses.reserve(futures.size());
      for (auto& f : futures) responses.push_back(f.get().items);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      engine.Shutdown();
      stats = engine.stats();

      if (max_batch == 8 && engine_exact) {
        // Batched serving must return exactly what the direct per-list
        // call returns, request by request.
        for (size_t i = 0; i < responses.size() && engine_exact; ++i) {
          engine_exact =
              responses[i] == model->Rerank(env.dataset(), *stream[i]);
        }
      }
      return static_cast<double>(total_requests) / secs;
    });

    if (max_batch == 1) {
      batch1_median = reps.median;
    } else {
      batch8_stats = stats;
    }
    fetch_speedup = batch1_median > 0 ? reps.median / batch1_median : 0.0;
    std::fprintf(stderr,
                 "[batch] fetch+compute batch=%d  %7.0f req/s median of %d "
                 "(min %.0f, %.2fx vs batch 1)  batches=%llu mean size=%.2f\n",
                 max_batch, reps.median, repetitions, reps.min, fetch_speedup,
                 static_cast<unsigned long long>(stats.batches),
                 stats.batches > 0 ? static_cast<double>(stats.batched_lists) /
                                         static_cast<double>(stats.batches)
                                   : 0.0);
    char row[1536];
    std::snprintf(row, sizeof(row),
                  ",\n  {\"mode\": \"fetch+compute\", \"batch\": %d, "
                  "\"fetch_stall_us\": 1500, \"threads\": 2, "
                  "\"throughput_rps\": %.1f, \"throughput_rps_min\": %.1f, "
                  "\"throughput_rps_samples\": %s, "
                  "\"speedup_vs_batch1\": %.2f, \"stats\": %s}",
                  max_batch, reps.median, reps.min,
                  reps.SamplesJson().c_str(), fetch_speedup,
                  stats.ToJson().c_str());
    results_json += row;
  }
  std::fprintf(stderr,
               "[batch] engine batched-vs-direct results: %s\n",
               engine_exact ? "IDENTICAL" : "MISMATCH");

  std::printf(
      "{\"bench\": \"batch\", \"requests\": %d, \"list_len\": %d, "
      "\"repetitions\": %d, \"hardware_threads\": %u, "
      "\"exact_scores\": %s, \"exact_serving\": %s, "
      "\"compute_speedup\": %.2f, \"fetch_compute_speedup\": %.2f, "
      "\"results\": [\n%s\n]}\n",
      total_requests, config.list_len, repetitions,
      std::thread::hardware_concurrency(), exact ? "true" : "false",
      engine_exact ? "true" : "false", compute_speedup, fetch_speedup,
      results_json.c_str());

  if (check) {
    bool ok = true;
    if (!exact || !engine_exact) {
      std::fprintf(stderr, "[batch] CHECK FAILED: batched path not exact\n");
      ok = false;
    }
    if (fetch_speedup < 1.5) {
      std::fprintf(stderr,
                   "[batch] CHECK FAILED: fetch+compute speedup %.2fx < "
                   "1.5x at micro-batch 8\n",
                   fetch_speedup);
      ok = false;
    }
    if (batch8_stats.batches == 0 || batch8_stats.max_batch_size < 2) {
      std::fprintf(stderr,
                   "[batch] CHECK FAILED: engine never realized a "
                   "multi-request batch (batches=%llu, max=%d)\n",
                   static_cast<unsigned long long>(batch8_stats.batches),
                   batch8_stats.max_batch_size);
      ok = false;
    }
    if (!ok) return 1;
    std::fprintf(stderr, "[batch] check passed: exact and %.2fx >= 1.5x\n",
                 fetch_speedup);
  }
  return 0;
}
