// Result-cache harness: measures what the router-level cache buys and
// verifies what it must never cost.
//
//  1. "steady": a Zipf-distributed request stream (a few hot users
//     dominate, a long tail of cold ones) against one published model,
//     with the cache capacity deliberately smaller than the distinct-list
//     universe so the LRU actually evicts. Reported: hit rate, hit vs miss
//     p50/p99 (from the per-response latency stamp), throughput, and the
//     same workload replayed with the cache disabled as the baseline.
//
//  2. "swap": the same Zipf stream while the slot is hot-swapped between
//     two snapshots mid-run. Every non-degraded response is checked
//     against a fresh re-rank by the model version stamped on it — a
//     stale cache entry surviving a swap, or a torn (version, items)
//     pair, counts as `stale` and fails the bench (exit 1).
//
// Output is one JSON object on stdout (perf-trajectory artifact); progress
// goes to stderr. `--json` is accepted for run_ledger.sh uniformity (the
// output is always JSON); `--quick` shrinks the stream.
//
//   ./build/bench/bench_cache            # full run
//   ./build/bench/bench_cache --quick    # smoke test

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

// Samples list indices with P(rank k) proportional to 1/k^s — the classic
// recommender access pattern: a handful of hot (user, candidate-set)
// pairs absorb most traffic.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Sample(std::mt19937_64& rng) const {
    const double u =
        std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double Percentile(std::vector<int64_t>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1));
  return static_cast<double>((*latencies)[idx]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rapid;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 60;
  config.sim.num_items = 400;
  config.sim.rerank_lists_per_user = 4;
  config.sim.test_lists_per_user = 2;
  config.dcm.lambda = 0.9f;
  config.seed = 2023;

  std::fprintf(stderr, "[cache] building environment...\n");
  eval::Environment env(config, bench::StandardDin());
  const std::vector<data::ImpressionList>& lists = env.test_lists();

  std::fprintf(stderr, "[cache] training two RAPID variants...\n");
  const std::string path_a = "/tmp/bench_cache_a.rsnp";
  const std::string path_b = "/tmp/bench_cache_b.rsnp";
  {
    core::RapidConfig cfg = bench::BenchRapidConfig();
    cfg.train.epochs = 2;
    core::RapidReranker model_a(cfg);
    model_a.Fit(env.dataset(), env.train_lists(), /*seed=*/7);
    cfg.head = core::OutputHead::kDeterministic;
    core::RapidReranker model_b(cfg);
    model_b.Fit(env.dataset(), env.train_lists(), /*seed=*/8);
    if (!serve::Snapshot::Save(path_a, model_a, env.dataset()) ||
        !serve::Snapshot::Save(path_b, model_b, env.dataset())) {
      std::fprintf(stderr, "[cache] snapshot save failed\n");
      return 1;
    }
  }

  const int submitters = 4;
  const int requests_per_submitter = quick ? 250 : 1000;
  const int total = submitters * requests_per_submitter;
  const double zipf_s = 1.2;
  // Capacity below the distinct-list universe, so the cold tail evicts and
  // the reported hit rate reflects LRU retention of the hot head, not an
  // everything-fits warm cache.
  const size_t cache_capacity = std::max<size_t>(lists.size() / 2, 8);
  const ZipfSampler zipf(lists.size(), zipf_s);

  serve::RouterConfig base_cfg;
  base_cfg.num_threads = 4;
  base_cfg.max_batch = 4;
  base_cfg.max_wait_us = 100;
  base_cfg.queue_capacity = 256;

  struct StreamResult {
    std::vector<int64_t> hit_us;
    std::vector<int64_t> miss_us;
    uint64_t degraded = 0;
    double secs = 0.0;
  };
  // Replays the Zipf stream against `router` from `submitters` threads.
  // Per-thread rngs are seeded deterministically so every run (cached,
  // uncached, swapping) sees the same request sequence.
  const auto run_stream = [&](serve::ServingRouter& router) {
    std::vector<std::vector<serve::RouterResponse>> responses(submitters);
    std::vector<std::thread> threads;
    const auto t0 = Clock::now();
    for (int s = 0; s < submitters; ++s) {
      threads.emplace_back([&, s] {
        std::mt19937_64 rng(1000 + s);
        responses[s].reserve(requests_per_submitter);
        for (int i = 0; i < requests_per_submitter; ++i) {
          serve::RouterRequest req;
          req.slot = "main";
          req.list = lists[zipf.Sample(rng)];
          responses[s].push_back(router.Submit(std::move(req)).get());
        }
      });
    }
    for (auto& t : threads) t.join();
    StreamResult result;
    result.secs = std::chrono::duration<double>(Clock::now() - t0).count();
    for (auto& per_thread : responses) {
      for (serve::RouterResponse& r : per_thread) {
        if (r.degraded) {
          ++result.degraded;
        } else {
          (r.cache_hit ? result.hit_us : result.miss_us)
              .push_back(r.latency_us);
        }
      }
    }
    return result;
  };

  // ---------------------------------------------------------------- steady
  std::fprintf(stderr,
               "[cache] steady: %d reqs over %zu lists (zipf s=%.1f, "
               "capacity %zu)...\n",
               total, lists.size(), zipf_s, cache_capacity);
  serve::RouterConfig cached_cfg = base_cfg;
  cached_cfg.cache.enabled = true;
  cached_cfg.cache.capacity = cache_capacity;
  serve::ServingRouter cached(env.dataset(), cached_cfg);
  if (cached.LoadSlot("main", path_a) == 0) {
    std::fprintf(stderr, "[cache] LoadSlot failed\n");
    return 1;
  }
  StreamResult steady = run_stream(cached);
  cached.Shutdown();
  const serve::CacheStats steady_cache = cached.stats().cache;

  const double hit_rate =
      static_cast<double>(steady.hit_us.size()) /
      std::max<double>(1.0, static_cast<double>(steady.hit_us.size() +
                                                steady.miss_us.size()));
  const double hit_p50 = Percentile(&steady.hit_us, 0.50);
  const double hit_p99 = Percentile(&steady.hit_us, 0.99);
  const double miss_p50 = Percentile(&steady.miss_us, 0.50);
  const double miss_p99 = Percentile(&steady.miss_us, 0.99);
  std::fprintf(stderr,
               "[cache] steady: hit_rate=%.2f hit p50=%.0fus p99=%.0fus | "
               "miss p50=%.0fus p99=%.0fus | %.0f req/s\n",
               hit_rate, hit_p50, hit_p99, miss_p50, miss_p99,
               (steady.hit_us.size() + steady.miss_us.size()) / steady.secs);

  // Baseline: identical stream, cache disabled.
  std::fprintf(stderr, "[cache] baseline (cache off)...\n");
  serve::ServingRouter uncached(env.dataset(), base_cfg);
  if (uncached.LoadSlot("main", path_a) == 0) {
    std::fprintf(stderr, "[cache] LoadSlot failed\n");
    return 1;
  }
  StreamResult baseline = run_stream(uncached);
  uncached.Shutdown();
  const double base_p50 = Percentile(&baseline.miss_us, 0.50);
  const double base_p99 = Percentile(&baseline.miss_us, 0.99);
  std::fprintf(stderr, "[cache] baseline: p50=%.0fus p99=%.0fus %.0f req/s\n",
               base_p50, base_p99, baseline.miss_us.size() / baseline.secs);

  // ------------------------------------------------------------------ swap
  // Reference outputs per (model, list): version 1 and every odd version
  // serve snapshot A, even versions serve B (swaps alternate B, A, B, ...).
  const auto model_a = serve::Snapshot::Load(path_a, env.dataset());
  const auto model_b = serve::Snapshot::Load(path_b, env.dataset());
  if (model_a == nullptr || model_b == nullptr) {
    std::fprintf(stderr, "[cache] snapshot reload failed\n");
    return 1;
  }
  std::vector<std::vector<int>> ref_a(lists.size()), ref_b(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    ref_a[i] = model_a->Rerank(env.dataset(), lists[i]);
    ref_b[i] = model_b->Rerank(env.dataset(), lists[i]);
  }

  const int swaps = quick ? 6 : 12;
  std::fprintf(stderr, "[cache] swap: %d reqs, %d swaps...\n", total, swaps);
  serve::ServingRouter swapping(env.dataset(), cached_cfg);
  if (swapping.LoadSlot("main", path_a) == 0) {
    std::fprintf(stderr, "[cache] LoadSlot failed\n");
    return 1;
  }

  std::atomic<uint64_t> stale{0};
  std::atomic<uint64_t> swap_hits{0};
  std::atomic<uint64_t> swap_degraded{0};
  std::vector<std::thread> threads;
  const auto swap_t0 = Clock::now();
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      std::mt19937_64 rng(2000 + s);
      for (int i = 0; i < requests_per_submitter; ++i) {
        const size_t idx = zipf.Sample(rng);
        serve::RouterRequest req;
        req.slot = "main";
        req.list = lists[idx];
        const serve::RouterResponse r =
            swapping.Submit(std::move(req)).get();
        if (r.degraded) {
          ++swap_degraded;
          continue;
        }
        if (r.cache_hit) ++swap_hits;
        const std::vector<int>& expected =
            (r.model_version % 2 == 1) ? ref_a[idx] : ref_b[idx];
        if (r.items != expected) ++stale;
      }
    });
  }
  for (int i = 0; i < swaps; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(quick ? 10 : 20));
    if (swapping.LoadSlot("main", (i % 2 == 0) ? path_b : path_a) == 0) {
      std::fprintf(stderr, "[cache] mid-run LoadSlot failed\n");
      return 1;
    }
  }
  for (auto& t : threads) t.join();
  const double swap_secs =
      std::chrono::duration<double>(Clock::now() - swap_t0).count();
  swapping.DrainCacheMaintenance();
  swapping.Shutdown();
  const serve::RouterStats swap_stats = swapping.stats();

  const double swap_hit_rate =
      static_cast<double>(swap_hits.load()) /
      std::max<double>(1.0, static_cast<double>(total) -
                                static_cast<double>(swap_degraded.load()));
  std::fprintf(stderr,
               "[cache] swap: stale=%llu hit_rate=%.2f swept=%llu "
               "%.0f req/s\n",
               static_cast<unsigned long long>(stale.load()), swap_hit_rate,
               static_cast<unsigned long long>(swap_stats.cache.swept),
               total / swap_secs);

  std::printf(
      "{\"bench\": \"cache\", \"hardware_threads\": %u, "
      "\"steady\": {\"requests\": %d, \"distinct_lists\": %zu, "
      "\"zipf_s\": %.2f, \"capacity\": %zu, \"hit_rate\": %.3f, "
      "\"hit_p50_us\": %.0f, \"hit_p99_us\": %.0f, \"miss_p50_us\": %.0f, "
      "\"miss_p99_us\": %.0f, \"throughput_rps\": %.1f, \"cache\": %s}, "
      "\"baseline\": {\"p50_us\": %.0f, \"p99_us\": %.0f, "
      "\"throughput_rps\": %.1f}, "
      "\"swap\": {\"requests\": %d, \"swaps\": %d, \"stale\": %llu, "
      "\"degraded\": %llu, \"hit_rate\": %.3f, \"swept\": %llu, "
      "\"throughput_rps\": %.1f}}\n",
      std::thread::hardware_concurrency(), total, lists.size(), zipf_s,
      cache_capacity, hit_rate, hit_p50, hit_p99, miss_p50, miss_p99,
      (steady.hit_us.size() + steady.miss_us.size()) / steady.secs,
      steady_cache.ToJson().c_str(), base_p50, base_p99,
      baseline.miss_us.size() / baseline.secs, total, swaps,
      static_cast<unsigned long long>(stale.load()),
      static_cast<unsigned long long>(swap_degraded.load()), swap_hit_rate,
      static_cast<unsigned long long>(swap_stats.cache.swept),
      total / swap_secs);

  if (stale.load() > 0) {
    std::fprintf(stderr,
                 "[cache] FAIL: %llu stale responses across swaps\n",
                 static_cast<unsigned long long>(stale.load()));
    return 1;
  }
  return 0;
}
