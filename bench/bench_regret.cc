// Empirically validates Theorem 5.1: the linearized RAPID with UCB
// exploration has O~(sqrt(n)) gamma-scaled regret when the click feedback
// follows a *linear* DCM (the theorem's assumption). Prints cumulative
// regret and regret/sqrt(n) at checkpoints for
//   (a) the UCB policy on the linear DCM         -> R/sqrt(n) flattens;
//   (b) a uniform-random policy on the same DCM  -> R grows linearly;
//   (c) the UCB policy on the *nonlinear* ground-truth DCM (robustness
//       check outside the theorem's assumptions) -> sublinear vs random
//       but with a persistent approximation gap.

#include <cstdio>

#include "bandit/linear_rapid.h"
#include "datagen/simulator.h"

namespace {

void PrintCurve(const char* name, const rapid::bandit::RegretCurve& curve) {
  std::printf("%s\n", name);
  std::printf("%8s  %16s %16s\n", "round", "cum. regret", "R/sqrt(n)");
  for (int checkpoint : {100, 250, 500, 1000, 2000, 3000, 4500, 6000}) {
    const int t = checkpoint - 1;
    if (t >= static_cast<int>(curve.cumulative_regret.size())) break;
    std::printf("%8d  %16.2f %16.3f\n", checkpoint,
                curve.cumulative_regret[t], curve.regret_over_sqrt_n[t]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace rapid;

  data::SimConfig sim;
  sim.kind = data::DatasetKind::kTaobao;
  sim.num_users = 200;
  sim.num_items = 1000;
  data::Dataset data = data::GenerateDataset(sim, 17);

  const int rounds = 6000;
  const int pool = 15;
  std::printf(
      "Theorem 5.1 validation: %d rounds, pool size %d, K=5.\n\n", rounds,
      pool);

  bandit::LinearDcmEnvironment linear_env(&data, 23);
  bandit::RegretCurve ucb_linear = bandit::RunRegretExperiment(
      data, linear_env, bandit::LinearRapidBandit::Config{}, rounds, pool,
      11);
  PrintCurve("(a) UCB policy, linear DCM (theorem setting):", ucb_linear);

  bandit::RegretCurve random_linear =
      bandit::RunRandomPolicyExperiment(data, linear_env, 5, rounds, pool, 11);
  PrintCurve("(b) uniform-random policy, linear DCM:", random_linear);

  click::DcmConfig dcm_cfg;
  dcm_cfg.lambda = 0.7f;
  click::GroundTruthClickModel nonlinear(&data, dcm_cfg);
  bandit::RegretCurve ucb_nonlinear = bandit::RunRegretExperiment(
      data, nonlinear, bandit::LinearRapidBandit::Config{}, rounds, pool, 11);
  PrintCurve("(c) UCB policy, nonlinear ground-truth DCM (robustness):",
             ucb_nonlinear);

  const double early = ucb_linear.regret_over_sqrt_n[499];
  const double late = ucb_linear.regret_over_sqrt_n[rounds - 1];
  std::printf(
      "Linear setting: UCB regret/sqrt(n) at n=500: %.3f, at n=%d: %.3f "
      "(%s).\n",
      early, rounds, late,
      late <= early * 1.15 ? "flat => consistent with O~(sqrt(n))"
                           : "still growing");
  std::printf(
      "Random policy per-round regret stays constant: R(n)/n = %.4f => "
      "linear regret.\n",
      random_linear.cumulative_regret[rounds - 1] / rounds);
  return 0;
}
