// Scale-out bench for the sharded serving tier: forks 1/2/4 REAL
// `net::Server` processes (separate address spaces, loopback sockets) and
// drives them through one `shard::ShardRouter`, measuring fan-out
// throughput as the fleet grows. The per-request model cost is a
// sleep-based fetch+compute stall, so a single-core host still shows the
// scaling the sharding buys: the stalls overlap across processes even
// when compute cannot.
//
// Two phases, each of which both measures and *verifies*:
//
//  1. "sweep": the same windowed load against a 1-, 2-, and 4-shard
//     fleet. Reported: throughput and round-trip percentiles per fleet
//     size, plus speedup_2x / speedup_4x over the single shard. Any
//     failed reply fails the bench; `--check` additionally requires
//     speedup_2x >= 1.5.
//
//  2. "rollout": continuous load against the 2-shard fleet while the
//     router coordinates canary-first snapshot rollouts onto a second
//     slot. Every rollout must commit, every concurrent score reply must
//     arrive ok (the zero-drop contract extends fleet-wide), and the
//     rolled slot must end on the expected published version.
//
// Children are forked BEFORE the parent creates any thread (fork and
// threads do not mix); each child writes its ephemeral port over a pipe
// and exits when the control pipe reaches EOF.
//
// Output is one JSON object on stdout; progress goes to stderr. `--json`
// is accepted for run_ledger.sh uniformity (the output is always JSON).
//
//   ./build/bench/bench_shard                   # full run
//   ./build/bench/bench_shard --quick --check   # tier-2 perf gate

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "net/server.h"
#include "serve/router.h"
#include "serve/snapshot.h"
#include "shard/shard_router.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kStallUs = 2500;
constexpr int kWindow = 64;
constexpr int kNumUsers = 200;

double Percentile(std::vector<int64_t>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1));
  return static_cast<double>((*latencies)[idx]);
}

/// The serving-cost stand-in: a per-request fetch+compute stall (feature
/// fetch, model forward) followed by a trivial permutation. Sleeping
/// rather than spinning is what makes the scaling measurable on one core.
class FetchStallReranker : public rapid::rerank::Reranker {
 public:
  explicit FetchStallReranker(int stall_us) : stall_us_(stall_us) {}

  std::string name() const override { return "fetch-stall"; }

  std::vector<int> Rerank(const rapid::data::Dataset& /*data*/,
                          const rapid::data::ImpressionList& list) const
      override {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    std::vector<int> out = list.items;
    if (!out.empty()) std::rotate(out.begin(), out.begin() + 1, out.end());
    return out;
  }

 private:
  const int stall_us_;
};

/// Child-process body: one shard = one ServingRouter behind one
/// net::Server, remote load enabled (the rollout phase drives it). Writes
/// the bound port to `port_fd`, serves until `ctl_fd` hits EOF.
[[noreturn]] void RunShardServer(const rapid::data::Dataset& dataset,
                                 int port_fd, int ctl_fd) {
  using namespace rapid;
  serve::RouterConfig router_cfg;
  router_cfg.num_threads = 1;
  router_cfg.queue_capacity = 2048;
  serve::ServingRouter router(dataset, router_cfg);
  router.InstallSlot("stall", std::make_shared<FetchStallReranker>(kStallUs));

  net::ServerConfig server_cfg;
  server_cfg.enable_remote_load = true;
  server_cfg.num_dispatchers = 2;
  net::Server server(router, server_cfg);
  if (!server.Start()) std::_Exit(2);
  const uint16_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) std::_Exit(2);
  ::close(port_fd);

  char byte;
  while (::read(ctl_fd, &byte, 1) > 0) {
  }
  server.Stop();
  router.Shutdown();
  std::_Exit(0);
}

struct ShardProcess {
  pid_t pid = -1;
  int ctl_fd = -1;  // Closing it tells the child to exit.
  uint16_t port = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rapid;
  bool quick = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  // ------------------------------------------------------------- environment
  // Dataset + snapshots are built in the parent BEFORE any fork so the
  // children inherit them copy-on-write and never retrain.
  std::fprintf(stderr, "[shard] building dataset + training snapshots...\n");
  data::SimConfig sim;
  sim.kind = data::DatasetKind::kTaobao;
  sim.num_users = kNumUsers;
  sim.num_items = 250;
  sim.rerank_lists_per_user = 1;
  data::Dataset dataset = data::GenerateDataset(sim, 2024);
  click::GroundTruthClickModel dcm(&dataset, click::DcmConfig{});
  std::mt19937_64 click_rng(13);
  std::vector<data::ImpressionList> lists;
  for (const data::Request& req : dataset.rerank_train_requests) {
    data::ImpressionList list;
    list.user_id = req.user_id;
    list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
    for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
    list.clicks = dcm.SimulateClicks(list.user_id, list.items, click_rng);
    lists.push_back(std::move(list));
  }
  const char* snapshot_paths[2] = {"/tmp/bench_shard_a.rsnp",
                                   "/tmp/bench_shard_b.rsnp"};
  for (int s = 0; s < 2; ++s) {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = s == 0 ? 8 : 12;
    core::RapidReranker model(cfg);
    model.Fit(dataset, lists, /*seed=*/static_cast<uint64_t>(s + 1));
    if (!serve::Snapshot::Save(snapshot_paths[s], model, dataset)) {
      std::fprintf(stderr, "[shard] snapshot save failed\n");
      return 1;
    }
  }

  // ------------------------------------------------------------------ fleets
  // Fork every child for every fleet size up front — the parent is still
  // single-threaded here, which is the only safe time to fork.
  const std::vector<int> fleet_sizes = {1, 2, 4};
  std::vector<std::vector<ShardProcess>> fleets;
  for (int size : fleet_sizes) {
    std::vector<ShardProcess> fleet;
    for (int s = 0; s < size; ++s) {
      int port_pipe[2], ctl_pipe[2];
      if (::pipe(port_pipe) != 0 || ::pipe(ctl_pipe) != 0) {
        std::fprintf(stderr, "[shard] pipe failed\n");
        return 1;
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        std::fprintf(stderr, "[shard] fork failed\n");
        return 1;
      }
      if (pid == 0) {
        ::close(port_pipe[0]);
        ::close(ctl_pipe[1]);
        RunShardServer(dataset, port_pipe[1], ctl_pipe[0]);
      }
      ::close(port_pipe[1]);
      ::close(ctl_pipe[0]);
      ShardProcess proc;
      proc.pid = pid;
      proc.ctl_fd = ctl_pipe[1];
      if (::read(port_pipe[0], &proc.port, sizeof(proc.port)) !=
          sizeof(proc.port)) {
        std::fprintf(stderr, "[shard] child failed to report a port\n");
        return 1;
      }
      ::close(port_pipe[0]);
      fleet.push_back(proc);
    }
    fleets.push_back(std::move(fleet));
  }
  const auto shutdown_all = [&] {
    for (auto& fleet : fleets) {
      for (ShardProcess& proc : fleet) {
        if (proc.ctl_fd >= 0) ::close(proc.ctl_fd);
        proc.ctl_fd = -1;
      }
    }
    bool clean = true;
    for (auto& fleet : fleets) {
      for (ShardProcess& proc : fleet) {
        int status = 0;
        ::waitpid(proc.pid, &status, 0);
        clean = clean && WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
    }
    return clean;
  };

  const auto endpoints_of = [&](const std::vector<ShardProcess>& fleet) {
    std::vector<shard::ShardEndpoint> endpoints;
    for (const ShardProcess& proc : fleet) {
      endpoints.push_back({"127.0.0.1", proc.port});
    }
    return endpoints;
  };

  data::ImpressionList probe_list;
  for (int i = 0; i < 10; ++i) {
    probe_list.items.push_back(i);
    probe_list.scores.push_back(1.0f - 0.05f * i);
  }
  const auto make_request = [&](const std::string& slot, int user) {
    net::WireRequest request;
    request.slot = slot;
    request.lane = serve::Lane::kHigh;
    request.list = probe_list;
    request.list.user_id = user % kNumUsers;
    return request;
  };

  // Windowed fan-out load through the shard router; every reply must be ok.
  struct LoadResult {
    std::vector<int64_t> lat_us;
    uint64_t failures = 0;
    double secs = 0.0;
  };
  const auto run_load = [&](shard::ShardRouter& router, int requests) {
    LoadResult result;
    result.lat_us.reserve(static_cast<size_t>(requests));
    std::deque<std::pair<std::future<shard::ShardReply>, Clock::time_point>>
        window;
    int submitted = 0;
    const auto t0 = Clock::now();
    while (static_cast<int>(result.lat_us.size()) + result.failures <
           static_cast<uint64_t>(requests)) {
      if (submitted < requests && static_cast<int>(window.size()) < kWindow) {
        window.emplace_back(router.Submit(make_request("stall", submitted)),
                            Clock::now());
        ++submitted;
        continue;
      }
      auto [future, sent_at] = std::move(window.front());
      window.pop_front();
      const shard::ShardReply reply = future.get();
      if (reply.ok) {
        result.lat_us.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - sent_at)
                .count());
      } else {
        ++result.failures;
      }
    }
    result.secs = std::chrono::duration<double>(Clock::now() - t0).count();
    return result;
  };

  bool failed = false;

  // ------------------------------------------------------------------- sweep
  const int sweep_requests = quick ? 240 : 800;
  struct SweepPoint {
    int shards = 0;
    double rps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    uint64_t failures = 0;
  };
  std::vector<SweepPoint> sweep;
  for (size_t f = 0; f < fleets.size(); ++f) {
    shard::ShardRouter router(endpoints_of(fleets[f]));
    if (!router.Start()) {
      std::fprintf(stderr, "[shard] router start failed\n");
      return 1;
    }
    LoadResult r = run_load(router, sweep_requests);
    SweepPoint point;
    point.shards = fleet_sizes[f];
    point.rps = static_cast<double>(r.lat_us.size()) / r.secs;
    point.p50_us = Percentile(&r.lat_us, 0.50);
    point.p99_us = Percentile(&r.lat_us, 0.99);
    point.failures = r.failures;
    sweep.push_back(point);
    std::fprintf(stderr,
                 "[shard] sweep %d shard(s): %.0f req/s p50=%.0fus "
                 "p99=%.0fus failures=%llu\n",
                 point.shards, point.rps, point.p50_us, point.p99_us,
                 static_cast<unsigned long long>(point.failures));
    if (point.failures > 0) {
      std::fprintf(stderr, "[shard] FAIL: sweep saw failed replies\n");
      failed = true;
    }
    router.Shutdown();
  }
  const double speedup2 = sweep[1].rps / std::max(sweep[0].rps, 1.0);
  const double speedup4 = sweep[2].rps / std::max(sweep[0].rps, 1.0);
  std::fprintf(stderr, "[shard] speedup: 2 shards %.2fx, 4 shards %.2fx\n",
               speedup2, speedup4);
  if (check && speedup2 < 1.5) {
    std::fprintf(stderr,
                 "[shard] FAIL: 2-shard speedup %.2fx below the 1.5x gate\n",
                 speedup2);
    failed = true;
  }

  // ----------------------------------------------------------------- rollout
  // Continuous score load on the 2-shard fleet while snapshots roll out
  // canary-first onto a second slot. The zero-drop contract must hold
  // fleet-wide: every concurrent reply arrives ok, every rollout commits.
  const int rollouts = 4;
  const int rollout_load = quick ? 400 : 1200;
  uint64_t rollout_failures = 0;
  int rollouts_committed = 0;
  uint64_t rolled_version = 0;
  {
    shard::ShardRouter router(endpoints_of(fleets[1]));
    if (!router.Start()) {
      std::fprintf(stderr, "[shard] router start failed\n");
      return 1;
    }
    std::atomic<uint64_t> load_failures{0};
    std::atomic<bool> load_done{false};
    std::thread load([&] {
      std::deque<std::future<shard::ShardReply>> window;
      int submitted = 0;
      int received = 0;
      while (received < rollout_load) {
        if (submitted < rollout_load &&
            static_cast<int>(window.size()) < kWindow) {
          window.push_back(router.Submit(make_request("stall", submitted)));
          ++submitted;
          continue;
        }
        if (!window.front().get().ok) load_failures.fetch_add(1);
        window.pop_front();
        ++received;
      }
      load_done.store(true);
    });
    for (int r = 0; r < rollouts; ++r) {
      const shard::RolloutResult result =
          router.Rollout("served", snapshot_paths[r % 2]);
      if (result.status == shard::RolloutStatus::kCommitted) {
        ++rollouts_committed;
        rolled_version = result.versions[0];
      } else {
        std::fprintf(stderr, "[shard] FAIL: rollout %d: %s\n", r,
                     result.detail.c_str());
      }
    }
    load.join();
    rollout_failures = load_failures.load();
    std::fprintf(stderr,
                 "[shard] rollout: %d/%d committed, slot version %llu, "
                 "%llu/%d load failures\n",
                 rollouts_committed, rollouts,
                 static_cast<unsigned long long>(rolled_version),
                 static_cast<unsigned long long>(rollout_failures),
                 rollout_load);
    if (rollouts_committed != rollouts ||
        rolled_version != static_cast<uint64_t>(rollouts) ||
        rollout_failures > 0) {
      std::fprintf(stderr,
                   "[shard] FAIL: rollout under load was not zero-drop\n");
      failed = true;
    }
    // The fleet view sees both shards and the aggregate request count.
    const shard::FleetStats stats = router.Stats();
    if (stats.shards_up != 2) {
      std::fprintf(stderr, "[shard] FAIL: stats scrape saw %d/2 shards\n",
                   stats.shards_up);
      failed = true;
    }
    router.Shutdown();
  }

  if (!shutdown_all()) {
    std::fprintf(stderr, "[shard] FAIL: a shard process exited uncleanly\n");
    failed = true;
  }

  std::printf(
      "{\"bench\": \"shard\", \"hardware_threads\": %u, "
      "\"stall_us\": %d, \"window\": %d, \"requests\": %d, "
      "\"sweep\": ["
      "{\"shards\": 1, \"throughput_rps\": %.1f, \"p50_us\": %.0f, "
      "\"p99_us\": %.0f}, "
      "{\"shards\": 2, \"throughput_rps\": %.1f, \"p50_us\": %.0f, "
      "\"p99_us\": %.0f}, "
      "{\"shards\": 4, \"throughput_rps\": %.1f, \"p50_us\": %.0f, "
      "\"p99_us\": %.0f}], "
      "\"speedup_2x\": %.2f, \"speedup_4x\": %.2f, "
      "\"rollout\": {\"rollouts\": %d, \"committed\": %d, "
      "\"slot_version\": %llu, \"load_requests\": %d, "
      "\"load_failures\": %llu}}\n",
      std::thread::hardware_concurrency(), kStallUs, kWindow, sweep_requests,
      sweep[0].rps, sweep[0].p50_us, sweep[0].p99_us, sweep[1].rps,
      sweep[1].p50_us, sweep[1].p99_us, sweep[2].rps, sweep[2].p50_us,
      sweep[2].p99_us, speedup2, speedup4, rollouts, rollouts_committed,
      static_cast<unsigned long long>(rolled_version), rollout_load,
      static_cast<unsigned long long>(rollout_failures));

  return failed ? 1 : 0;
}
