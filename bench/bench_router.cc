// Multi-model router harness: exercises the two claims the serving router
// exists to make measurable.
//
//  1. "swap": hot snapshot swap under sustained load. Two RAPID variants
//     are trained and snapshotted; submitter threads keep a slot saturated
//     while the main thread repeatedly `LoadSlot`s the other snapshot into
//     it. Reported: completed/submitted (must match — zero drops),
//     degraded count, responses per published version (attribution), swap
//     latencies, and throughput.
//
//  2. "admission": shed-vs-block under a burst that exceeds service
//     capacity. The same burst is replayed against a `kBlock` router
//     (requests queue up; tail latency grows with burst size) and a
//     `kShed` router (requests above the low-lane watermark get an
//     immediate fallback answer; tail latency stays bounded by the
//     watermark). Reported: p50/p99 and shed counts for both policies.
//
// Output is one JSON object on stdout (perf-trajectory artifact); progress
// goes to stderr.
//
//   ./build/bench/bench_router            # full run
//   ./build/bench/bench_router --quick    # smaller burst (smoke test)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

// Emulates the feature-store fetch that precedes scoring in a live
// recommender; makes one request's service time predictable so the
// admission comparison is about queueing, not model jitter.
class StallReranker : public rapid::rerank::Reranker {
 public:
  StallReranker(const rapid::rerank::Reranker& inner, int stall_us)
      : inner_(inner), stall_us_(stall_us) {}

  std::string name() const override { return inner_.name() + "+stall"; }

  std::vector<int> Rerank(
      const rapid::data::Dataset& data,
      const rapid::data::ImpressionList& list) const override {
    if (stall_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    }
    return inner_.Rerank(data, list);
  }

 private:
  const rapid::rerank::Reranker& inner_;
  const int stall_us_;
};

double ElapsedMs(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rapid;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  eval::PipelineConfig config;
  config.sim.kind = data::DatasetKind::kTaobao;
  config.sim.num_users = 60;
  config.sim.num_items = 400;
  config.sim.rerank_lists_per_user = 4;
  config.sim.test_lists_per_user = 2;
  config.dcm.lambda = 0.9f;
  config.seed = 2023;

  std::fprintf(stderr, "[router] building environment...\n");
  eval::Environment env(config, bench::StandardDin());

  // Two serving candidates for the A/B slot: the paper's probabilistic
  // head and the deterministic ablation. Throughput is weight-agnostic, so
  // training is kept minimal.
  std::fprintf(stderr, "[router] training two RAPID variants...\n");
  const std::string path_a = "/tmp/bench_router_a.rsnp";
  const std::string path_b = "/tmp/bench_router_b.rsnp";
  {
    core::RapidConfig cfg = bench::BenchRapidConfig();
    cfg.train.epochs = 2;
    core::RapidReranker model_a(cfg);
    model_a.Fit(env.dataset(), env.train_lists(), /*seed=*/7);
    cfg.head = core::OutputHead::kDeterministic;
    core::RapidReranker model_b(cfg);
    model_b.Fit(env.dataset(), env.train_lists(), /*seed=*/8);
    if (!serve::Snapshot::Save(path_a, model_a, env.dataset()) ||
        !serve::Snapshot::Save(path_b, model_b, env.dataset())) {
      std::fprintf(stderr, "[router] snapshot save failed\n");
      return 1;
    }
  }

  // ---------------------------------------------------------------- swap
  const int submitters = 4;
  const int requests_per_submitter = quick ? 100 : 400;
  const int swaps = quick ? 6 : 12;
  const int total = submitters * requests_per_submitter;

  serve::RouterConfig router_cfg;
  router_cfg.num_threads = 4;
  router_cfg.max_batch = 4;
  router_cfg.max_wait_us = 100;
  router_cfg.queue_capacity = 256;
  serve::ServingRouter router(env.dataset(), router_cfg);
  if (router.LoadSlot("main", path_a) == 0) {
    std::fprintf(stderr, "[router] initial LoadSlot failed\n");
    return 1;
  }

  std::fprintf(stderr, "[router] swap-under-load: %d reqs, %d swaps...\n",
               total, swaps);
  std::vector<std::future<serve::RouterResponse>> futures(total);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < requests_per_submitter; ++i) {
        serve::RouterRequest req;
        req.slot = "main";
        req.list = env.test_lists()[(s * requests_per_submitter + i) %
                                    env.test_lists().size()];
        futures[s * requests_per_submitter + i] = router.Submit(std::move(req));
      }
    });
  }
  // Alternate the slot between the two snapshots while the stream runs;
  // each LoadSlot builds the model off the worker threads and publishes it
  // atomically, so the only observable effect is the version histogram.
  std::vector<double> swap_ms;
  for (int i = 0; i < swaps; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(quick ? 20 : 40));
    const auto s0 = Clock::now();
    const uint64_t version =
        router.LoadSlot("main", (i % 2 == 0) ? path_b : path_a);
    swap_ms.push_back(ElapsedMs(s0));
    if (version == 0) {
      std::fprintf(stderr, "[router] mid-run LoadSlot failed\n");
      return 1;
    }
  }
  for (auto& t : threads) t.join();

  uint64_t completed = 0, degraded = 0;
  std::map<uint64_t, uint64_t> by_version;
  for (auto& f : futures) {
    const serve::RouterResponse r = f.get();
    ++completed;
    if (r.degraded) {
      ++degraded;
    } else {
      ++by_version[r.model_version];
    }
  }
  const double swap_secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  router.Shutdown();
  const serve::RouterStats swap_stats = router.stats();

  double swap_ms_max = 0.0, swap_ms_sum = 0.0;
  for (double ms : swap_ms) {
    swap_ms_sum += ms;
    if (ms > swap_ms_max) swap_ms_max = ms;
  }
  std::string versions_json;
  for (const auto& [version, count] : by_version) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%llu\": %llu",
                  versions_json.empty() ? "" : ", ",
                  static_cast<unsigned long long>(version),
                  static_cast<unsigned long long>(count));
    versions_json += buf;
  }
  std::fprintf(stderr,
               "[router] swap: %llu/%d completed, %llu degraded, %zu versions "
               "served, swap mean=%.1fms max=%.1fms, %.0f req/s\n",
               static_cast<unsigned long long>(completed), total,
               static_cast<unsigned long long>(degraded), by_version.size(),
               swap_ms.empty() ? 0.0 : swap_ms_sum / swap_ms.size(),
               swap_ms_max, completed / swap_secs);

  // ----------------------------------------------------- admission burst
  // Service capacity: 2 workers x 1ms per request. The burst outruns it by
  // design, so queueing policy is the only thing that differs between the
  // two routers.
  const int burst = quick ? 400 : 1600;
  const int stall_us = 1000;
  const auto loaded = serve::Snapshot::Load(path_a, env.dataset());
  if (loaded == nullptr) {
    std::fprintf(stderr, "[router] snapshot reload failed\n");
    return 1;
  }
  const auto stalled =
      std::make_shared<const StallReranker>(*loaded, stall_us);

  struct PolicyResult {
    serve::ServingStats stats;
    double submit_ms = 0.0;
    uint64_t shed = 0;
  };
  auto run_policy = [&](serve::AdmissionPolicy policy) {
    serve::RouterConfig cfg;
    cfg.num_threads = 2;
    cfg.max_batch = 1;
    cfg.max_wait_us = 0;
    cfg.queue_capacity = 4096;  // Big enough that kBlock never blocks here.
    cfg.admission.policy = policy;
    cfg.admission.low_lane_watermark = 64;
    serve::ServingRouter r(env.dataset(), cfg);
    r.InstallSlot("main", stalled);

    std::vector<std::future<serve::RouterResponse>> fs;
    fs.reserve(burst);
    const auto b0 = Clock::now();
    for (int i = 0; i < burst; ++i) {
      serve::RouterRequest req;
      req.slot = "main";
      req.lane = serve::Lane::kLow;  // Background traffic absorbs overload.
      req.list = env.test_lists()[i % env.test_lists().size()];
      fs.push_back(r.Submit(std::move(req)));
    }
    PolicyResult result;
    result.submit_ms = ElapsedMs(b0);
    for (auto& f : fs) f.get();
    r.Shutdown();
    const serve::RouterStats stats = r.stats();
    result.stats = stats.total;
    result.shed = stats.total.shed;
    return result;
  };

  std::fprintf(stderr, "[router] admission burst: %d reqs @ %dus each...\n",
               burst, stall_us);
  const PolicyResult block = run_policy(serve::AdmissionPolicy::kBlock);
  const PolicyResult shed = run_policy(serve::AdmissionPolicy::kShed);
  std::fprintf(stderr,
               "[router] block: p50=%.0fus p99=%.0fus shed=%llu | "
               "shed: p50=%.0fus p99=%.0fus shed=%llu\n",
               block.stats.p50_us, block.stats.p99_us,
               static_cast<unsigned long long>(block.shed), shed.stats.p50_us,
               shed.stats.p99_us, static_cast<unsigned long long>(shed.shed));

  std::printf(
      "{\"bench\": \"router\", \"hardware_threads\": %u, "
      "\"swap\": {\"submitted\": %d, \"completed\": %llu, \"dropped\": %lld, "
      "\"degraded\": %llu, \"swaps\": %d, \"swap_ms_mean\": %.2f, "
      "\"swap_ms_max\": %.2f, \"throughput_rps\": %.1f, "
      "\"responses_by_version\": {%s}, \"stats\": %s}, "
      "\"admission\": {\"burst\": %d, \"stall_us\": %d, "
      "\"low_lane_watermark\": 64, "
      "\"block\": {\"submit_ms\": %.1f, \"stats\": %s}, "
      "\"shed\": {\"submit_ms\": %.1f, \"stats\": %s}}}\n",
      std::thread::hardware_concurrency(), total,
      static_cast<unsigned long long>(completed),
      static_cast<long long>(total) - static_cast<long long>(completed),
      static_cast<unsigned long long>(degraded), swaps,
      swap_ms.empty() ? 0.0 : swap_ms_sum / swap_ms.size(), swap_ms_max,
      completed / swap_secs, versions_json.c_str(),
      swap_stats.total.ToJson().c_str(), burst, stall_us, block.submit_ms,
      block.stats.ToJson().c_str(), shed.submit_ms,
      shed.stats.ToJson().c_str());
  return 0;
}
