// Microbenchmarks of the rapid::nn substrate: matmul kernels, recurrent
// cells, attention blocks, and a full RAPID forward/backward pass. These
// bound the per-request latency budget discussed in the paper's efficiency
// analysis (Section V-B).

#include <benchmark/benchmark.h>

#include <random>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace {

using namespace rapid;
using nn::Matrix;
using nn::Variable;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(1);
  Matrix a = Matrix::Randn(n, n, 1.0f, rng);
  Matrix b = Matrix::Randn(n, n, 1.0f, rng);
  Matrix out;
  for (auto _ : state) {
    nn::MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_LstmStep(benchmark::State& state) {
  const int batch = 20, in = 32, hidden = static_cast<int>(state.range(0));
  std::mt19937_64 rng(2);
  nn::LstmCell cell(in, hidden, rng);
  Variable x = Variable::Constant(Matrix::Randn(batch, in, 1.0f, rng));
  Variable h = Variable::Constant(Matrix(batch, hidden));
  Variable c = Variable::Constant(Matrix(batch, hidden));
  for (auto _ : state) {
    auto [h2, c2] = cell.Forward(x, h, c);
    benchmark::DoNotOptimize(h2.value().data());
  }
}
BENCHMARK(BM_LstmStep)->Arg(16)->Arg(64);

void BM_TransformerEncoderLayer(benchmark::State& state) {
  const int L = 20, d = static_cast<int>(state.range(0));
  std::mt19937_64 rng(3);
  nn::TransformerEncoderLayer enc(d, 2, 2 * d, rng);
  Variable x = Variable::Constant(Matrix::Randn(L, d, 1.0f, rng));
  for (auto _ : state) {
    Variable y = enc.Forward(x);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_TransformerEncoderLayer)->Arg(16)->Arg(64);

void BM_MlpForwardBackward(benchmark::State& state) {
  std::mt19937_64 rng(4);
  nn::Mlp mlp({32, 64, 64, 1}, rng);
  Variable x = Variable::Constant(Matrix::Randn(20, 32, 1.0f, rng));
  nn::Adam opt(mlp.Params(), 1e-3f);
  for (auto _ : state) {
    opt.ZeroGrad();
    Variable loss = nn::MeanAll(nn::Square(mlp.Forward(x)));
    loss.Backward();
    opt.Step();
    benchmark::DoNotOptimize(loss.value().data());
  }
}
BENCHMARK(BM_MlpForwardBackward);

struct RapidFixture {
  RapidFixture() {
    data::SimConfig sim;
    sim.kind = data::DatasetKind::kTaobao;
    sim.num_users = 30;
    sim.num_items = 200;
    sim.rerank_lists_per_user = 2;
    data = data::GenerateDataset(sim, 5);
    click::GroundTruthClickModel dcm(&data, click::DcmConfig{});
    std::mt19937_64 rng(6);
    for (const data::Request& req : data.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 20);
      for (int i = 0; i < 20; ++i) list.scores.push_back(1.0f - 0.04f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train.push_back(std::move(list));
    }
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    model = std::make_unique<core::RapidReranker>(cfg);
    model->Fit(data, train, 7);
  }
  data::Dataset data;
  std::vector<data::ImpressionList> train;
  std::unique_ptr<core::RapidReranker> model;
};

RapidFixture& Fixture() {
  static RapidFixture* f = new RapidFixture();
  return *f;
}

// Per-request inference latency of the full RAPID model (L=20).
void BM_RapidInferOneList(benchmark::State& state) {
  RapidFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->ScoreList(f.data, f.train[i]));
    i = (i + 1) % f.train.size();
  }
}
BENCHMARK(BM_RapidInferOneList)->Unit(benchmark::kMillisecond);

// One full training step (16 lists) of RAPID.
void BM_RapidTrainStep(benchmark::State& state) {
  RapidFixture& f = Fixture();
  std::vector<data::ImpressionList> batch(f.train.begin(),
                                          f.train.begin() + 16);
  for (auto _ : state) {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    core::RapidReranker model(cfg);
    model.Fit(f.data, batch, 8);
    benchmark::DoNotOptimize(model.final_loss());
  }
}
BENCHMARK(BM_RapidTrainStep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
