// Microbenchmarks of the rapid::nn substrate: the GEMM kernels behind
// `nn::Gemm`, the vectorized activations, recurrent/attention blocks, and
// a GEMM-dominated MLP forward pass — each timed under both kernel
// backends (scalar reference vs AVX2/FMA when compiled in). These bound
// the per-request latency budget discussed in the paper's efficiency
// analysis (Section V-B) and gate the SIMD work: `--check` fails unless
// the AVX2 forward beats scalar by >= 1.5x, the two backends agree within
// tolerance, and a warm no-grad forward under an arena scope performs
// zero heap allocations.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "nn/arena.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/variable.h"

namespace {

using rapid::nn::Matrix;
using rapid::nn::Variable;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// GFLOP/s of `Gemm(a, b, &out)` at size n, repeated enough to dominate
// timer noise.
double GemmGflops(int n, int inner_iters) {
  std::mt19937_64 rng(1);
  const Matrix a = Matrix::Randn(n, n, 1.0f, rng);
  const Matrix b = Matrix::Randn(n, n, 1.0f, rng);
  Matrix out;
  rapid::nn::Gemm(a, b, &out);  // Warm the output buffer.
  const double t0 = Now();
  for (int it = 0; it < inner_iters; ++it) {
    rapid::nn::Gemm(a, b, &out);
  }
  const double secs = Now() - t0;
  const double flops = 2.0 * n * n * n * inner_iters;
  return flops / secs / 1e9;
}

// Melements/s of the sigmoid activation kernel over a flat buffer.
double SigmoidMeps(int size, int inner_iters) {
  std::mt19937_64 rng(2);
  const Matrix x = Matrix::Randn(1, size, 1.0f, rng);
  Matrix y(1, size);
  const double t0 = Now();
  for (int it = 0; it < inner_iters; ++it) {
    rapid::nn::kernel::Active().sigmoid(x.data(), y.data(), size);
  }
  const double secs = Now() - t0;
  return static_cast<double>(size) * inner_iters / secs / 1e6;
}

// Rows/s of a GEMM-dominated MLP forward (no-grad, arena-scoped) — the
// shape of the serving hot path, minus data plumbing.
double MlpForwardRowsPerSec(rapid::nn::Mlp& mlp, const Variable& x,
                            int inner_iters) {
  const double t0 = Now();
  for (int it = 0; it < inner_iters; ++it) {
    rapid::nn::arena::ArenaScope scope;
    rapid::nn::NoGradScope no_grad;
    Variable y = mlp.Forward(x);
  }
  const double secs = Now() - t0;
  return static_cast<double>(x.rows()) * inner_iters / secs;
}

// Steps/s of one LSTM cell step (forward only, no-grad).
double LstmStepsPerSec(int hidden, int inner_iters) {
  const int batch = 20, in = 32;
  std::mt19937_64 rng(3);
  rapid::nn::LstmCell cell(in, hidden, rng);
  const Variable x = Variable::Constant(Matrix::Randn(batch, in, 1.0f, rng));
  const Variable h = Variable::Constant(Matrix(batch, hidden));
  const Variable c = Variable::Constant(Matrix(batch, hidden));
  const double t0 = Now();
  for (int it = 0; it < inner_iters; ++it) {
    rapid::nn::arena::ArenaScope scope;
    rapid::nn::NoGradScope no_grad;
    auto [h2, c2] = cell.Forward(x, h, c);
  }
  return inner_iters / (Now() - t0);
}

// Layers/s of one transformer encoder layer forward (no-grad).
double EncoderLayersPerSec(int d, int inner_iters) {
  const int L = 20;
  std::mt19937_64 rng(4);
  rapid::nn::TransformerEncoderLayer enc(d, 2, 2 * d, rng);
  const Variable x = Variable::Constant(Matrix::Randn(L, d, 1.0f, rng));
  const double t0 = Now();
  for (int it = 0; it < inner_iters; ++it) {
    rapid::nn::arena::ArenaScope scope;
    rapid::nn::NoGradScope no_grad;
    Variable y = enc.Forward(x);
  }
  return inner_iters / (Now() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  namespace bench = rapid::bench;
  namespace kernel = rapid::nn::kernel;
  namespace arena = rapid::nn::arena;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);

  const bool have_avx2 = kernel::Avx2Available();
  std::vector<kernel::Backend> backends = {kernel::Backend::kScalar};
  if (have_avx2) backends.push_back(kernel::Backend::kAvx2);
  const int repetitions = 5;
  const int scale = args.quick ? 1 : 4;

  std::fprintf(stderr, "[nn_micro] backends: scalar%s\n",
               have_avx2 ? " avx2" : " (avx2 unavailable)");

  // The forward workload shared by the speedup gate and the exactness
  // check: an MLP whose cost is almost entirely its two 64x64 GEMMs.
  std::mt19937_64 rng(5);
  rapid::nn::Mlp mlp({32, 64, 64, 1}, rng);
  const Variable fwd_x = Variable::Constant(Matrix::Randn(160, 32, 1.0f, rng));

  std::string results_json;
  auto emit = [&](const std::string& row) {
    results_json += results_json.empty() ? "  " : ",\n  ";
    results_json += row;
  };

  double fwd_median[2] = {0.0, 0.0};  // [scalar, avx2]
  Matrix fwd_out[2];
  for (const kernel::Backend backend : backends) {
    kernel::ScopedBackendOverride override_backend(backend);
    const char* name = kernel::BackendName(kernel::ActiveBackend());
    const int bi = backend == kernel::Backend::kScalar ? 0 : 1;

    for (const int n : {64, 128}) {
      const int iters = scale * (n == 64 ? 200 : 40);
      const bench::RepeatStats reps = bench::Repeat(
          repetitions, [&] { return GemmGflops(n, iters); });
      std::fprintf(stderr, "[nn_micro] %-6s gemm n=%-3d %8.2f GFLOP/s\n",
                   name, n, reps.median);
      char extra[96];
      std::snprintf(extra, sizeof(extra),
                    "\"kernel\": \"gemm\", \"backend\": \"%s\", \"n\": %d",
                    name, n);
      emit(bench::MetricJson("gflops", reps, extra));
    }

    {
      const bench::RepeatStats reps = bench::Repeat(
          repetitions, [&] { return SigmoidMeps(1 << 16, scale * 100); });
      std::fprintf(stderr, "[nn_micro] %-6s sigmoid     %8.1f Melem/s\n",
                   name, reps.median);
      char extra[96];
      std::snprintf(extra, sizeof(extra),
                    "\"kernel\": \"sigmoid\", \"backend\": \"%s\"", name);
      emit(bench::MetricJson("melems", reps, extra));
    }

    {
      const bench::RepeatStats reps = bench::Repeat(repetitions, [&] {
        return MlpForwardRowsPerSec(mlp, fwd_x, scale * 50);
      });
      fwd_median[bi] = reps.median;
      std::fprintf(stderr, "[nn_micro] %-6s mlp forward %8.0f rows/s\n",
                   name, reps.median);
      char extra[96];
      std::snprintf(extra, sizeof(extra),
                    "\"kernel\": \"mlp_forward\", \"backend\": \"%s\"", name);
      emit(bench::MetricJson("rows_per_sec", reps, extra));
    }

    {
      // Arena lifetime rule 1 in action: the output buffer must be sized
      // on the heap BEFORE the scope opens — a Matrix assigned inside the
      // scope would live in rewound arena memory (and both backends would
      // land on the same rewound address, voiding the comparison).
      fwd_out[bi] = Matrix(fwd_x.rows(), 1);
      rapid::nn::arena::ArenaScope scope;
      rapid::nn::NoGradScope no_grad;
      const Matrix& y = mlp.Forward(fwd_x).value();
      std::memcpy(fwd_out[bi].data(), y.data(),
                  static_cast<size_t>(y.size()) * sizeof(float));
    }

    {
      const bench::RepeatStats reps = bench::Repeat(
          repetitions, [&] { return LstmStepsPerSec(64, scale * 100); });
      std::fprintf(stderr, "[nn_micro] %-6s lstm h=64   %8.0f steps/s\n",
                   name, reps.median);
      char extra[96];
      std::snprintf(extra, sizeof(extra),
                    "\"kernel\": \"lstm_step\", \"backend\": \"%s\"", name);
      emit(bench::MetricJson("steps_per_sec", reps, extra));
    }

    {
      const bench::RepeatStats reps = bench::Repeat(
          repetitions, [&] { return EncoderLayersPerSec(64, scale * 50); });
      std::fprintf(stderr, "[nn_micro] %-6s encoder d=64%8.0f layers/s\n",
                   name, reps.median);
      char extra[96];
      std::snprintf(extra, sizeof(extra),
                    "\"kernel\": \"encoder\", \"backend\": \"%s\"", name);
      emit(bench::MetricJson("layers_per_sec", reps, extra));
    }
  }

  // Cross-backend agreement on the forward output (rounding-level drift
  // only: FMA contraction and the vectorized exp).
  double max_diff = 0.0;
  if (have_avx2) {
    for (int i = 0; i < fwd_out[0].size(); ++i) {
      max_diff = std::max(
          max_diff, std::fabs(static_cast<double>(fwd_out[0].data()[i]) -
                              fwd_out[1].data()[i]));
    }
    std::fprintf(stderr, "[nn_micro] scalar-vs-avx2 forward max |diff| %.3g\n",
                 max_diff);
  }

  // Zero-allocation check: after one warm-up forward, a no-grad forward
  // inside an arena scope must touch neither malloc nor a new chunk.
  bool zero_alloc = true;
  if (arena::Enabled()) {
    {
      arena::ArenaScope warm;
      rapid::nn::NoGradScope no_grad;
      Variable y = mlp.Forward(fwd_x);
    }
    const arena::ThreadCounters before = arena::CountersThisThread();
    {
      arena::ArenaScope scope;
      rapid::nn::NoGradScope no_grad;
      Variable y = mlp.Forward(fwd_x);
    }
    const arena::ThreadCounters after = arena::CountersThisThread();
    const uint64_t heap = after.heap_allocs - before.heap_allocs;
    const uint64_t chunks = after.chunk_mallocs - before.chunk_mallocs;
    zero_alloc = heap == 0 && chunks == 0;
    std::fprintf(stderr,
                 "[nn_micro] warm forward allocations: heap=%llu chunks=%llu "
                 "(arena allocs %llu)\n",
                 static_cast<unsigned long long>(heap),
                 static_cast<unsigned long long>(chunks),
                 static_cast<unsigned long long>(after.arena_allocs -
                                                 before.arena_allocs));
  } else {
    std::fprintf(stderr,
                 "[nn_micro] arena disabled; skipping zero-alloc check\n");
  }

  const double forward_speedup =
      have_avx2 && fwd_median[0] > 0 ? fwd_median[1] / fwd_median[0] : 0.0;
  if (have_avx2) {
    std::fprintf(stderr, "[nn_micro] mlp forward avx2/scalar: %.2fx\n",
                 forward_speedup);
  }

  std::printf(
      "{\"bench\": \"nn_micro\", \"avx2\": %s, \"repetitions\": %d, "
      "\"forward_speedup\": %.2f, \"forward_max_diff\": %.3g, "
      "\"zero_alloc\": %s, \"results\": [\n%s\n]}\n",
      have_avx2 ? "true" : "false", repetitions, forward_speedup, max_diff,
      zero_alloc ? "true" : "false", results_json.c_str());

  if (args.check) {
    bool ok = true;
    if (have_avx2 && forward_speedup < 1.5) {
      std::fprintf(stderr,
                   "[nn_micro] CHECK FAILED: avx2 forward %.2fx < 1.5x over "
                   "scalar\n",
                   forward_speedup);
      ok = false;
    }
    if (have_avx2 && max_diff > 1e-3) {
      std::fprintf(stderr,
                   "[nn_micro] CHECK FAILED: backends disagree by %.3g "
                   "(> 1e-3)\n",
                   max_diff);
      ok = false;
    }
    if (!zero_alloc) {
      std::fprintf(stderr,
                   "[nn_micro] CHECK FAILED: warm arena-scoped forward "
                   "allocated on the heap\n");
      ok = false;
    }
    if (!ok) return 1;
    std::fprintf(stderr, "[nn_micro] check passed%s\n",
                 have_avx2 ? "" : " (scalar-only host: speedup gate skipped)");
  }
  return 0;
}
